//! A minimal hand-rolled JSON reader for the NDJSON protocols.
//!
//! The workspace policy is zero external dependencies, and [`telemetry`]
//! only *writes* JSON (plus a syntax validator); the serving stack must
//! also *read* request lines. This module parses one JSON value into a
//! small dynamic [`Json`] tree with the handful of accessors the
//! protocols need. It is not a general-purpose parser: numbers are
//! `f64` and objects keep last-key-wins semantics.
//!
//! Two properties matter for serving:
//!
//! * **Errors carry the field path.** A syntax error inside a nested
//!   member reports `in field "spec.engines"` (array elements as
//!   `[i]`), not just a byte offset — a client debugging a rejected
//!   submit line sees *which* field broke.
//! * **Escapes round-trip.** Every control character escapes through
//!   [`telemetry::json_escaped`] and parses back byte-identically, and
//!   `\uXXXX` surrogate pairs decode to their supplementary-plane
//!   scalar (a lone surrogate half is a parse error naming the field).

use std::collections::BTreeMap;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys, last duplicate wins).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object (`None` on other kinds).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if this is a
    /// non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parses exactly one JSON value from `text` (surrounding whitespace
/// allowed, trailing data rejected).
///
/// # Errors
///
/// A human-readable description of the first syntax error, naming the
/// byte offset and — when the error sits inside an object member — the
/// dotted field path (`in field "spec.engines[1]"`).
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: text.as_bytes(),
        pos: 0,
        path: Vec::new(),
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

/// One step of the field path the parser is currently inside.
enum Seg {
    Key(String),
    Index(usize),
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
    path: Vec<Seg>,
}

impl Parser<'_> {
    /// Formats `msg` with the byte offset and the current field path.
    fn err(&self, msg: &str) -> String {
        let mut out = format!("{msg} at byte {}", self.pos);
        if !self.path.is_empty() {
            out.push_str(" in field \"");
            for (i, seg) in self.path.iter().enumerate() {
                match seg {
                    Seg::Key(k) => {
                        if i > 0 {
                            out.push('.');
                        }
                        out.push_str(k);
                    }
                    Seg::Index(n) => {
                        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("[{n}]"));
                    }
                }
            }
            out.push('"');
        }
        out
    }

    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit(b"true").map(|()| Json::Bool(true)),
            Some(b'f') => self.lit(b"false").map(|()| Json::Bool(false)),
            Some(b'n') => self.lit(b"null").map(|()| Json::Null),
            Some(_) => self.number(),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.pos += 1;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.b.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.path.push(Seg::Key(key));
            if self.b.get(self.pos) != Some(&b':') {
                return Err(self.err("expected ':'"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            let Some(Seg::Key(key)) = self.path.pop() else {
                unreachable!("object member pushes a key segment");
            };
            members.insert(key, value);
            self.skip_ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.pos += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            self.path.push(Seg::Index(items.len()));
            let item = self.value()?;
            self.path.pop();
            items.push(item);
            self.skip_ws();
            match self.b.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn lit(&mut self, lit: &[u8]) -> Result<(), String> {
        if self.b.len() >= self.pos + lit.len() && &self.b[self.pos..self.pos + lit.len()] == lit {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err("bad literal"))
        }
    }

    /// One `\uXXXX` unit (the caller consumed the `\u`); leaves `pos` on
    /// the last hex digit.
    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 >= self.b.len() {
            return Err(self.err("bad \\u escape"));
        }
        let hex = std::str::from_utf8(&self.b[self.pos + 1..self.pos + 5])
            .ok()
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(hex)
    }

    fn string(&mut self) -> Result<String, String> {
        if self.b.get(self.pos) != Some(&b'"') {
            return Err(self.err("expected string"));
        }
        self.pos += 1;
        let mut out = String::new();
        while let Some(&c) = self.b.get(self.pos) {
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match self.b.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let unit = self.hex4()?;
                            let scalar = match unit {
                                // High surrogate: a low surrogate must
                                // follow, the pair encodes one
                                // supplementary-plane scalar.
                                0xd800..=0xdbff => {
                                    if self.b.get(self.pos + 1) != Some(&b'\\')
                                        || self.b.get(self.pos + 2) != Some(&b'u')
                                    {
                                        return Err(self.err("lone high surrogate"));
                                    }
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    if !(0xdc00..=0xdfff).contains(&low) {
                                        return Err(self.err("bad low surrogate"));
                                    }
                                    0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00)
                                }
                                0xdc00..=0xdfff => {
                                    return Err(self.err("lone low surrogate"));
                                }
                                u => u,
                            };
                            out.push(
                                char::from_u32(scalar).ok_or_else(|| self.err("bad \\u scalar"))?,
                            );
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                0x00..=0x1f => return Err(self.err("raw control char")),
                _ => {
                    // Consume one full UTF-8 scalar (the input is a
                    // &str, so continuation bytes are well-formed by
                    // construction).
                    let len = match c {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let end = (self.pos + len).min(self.b.len());
                    out.push_str(
                        std::str::from_utf8(&self.b[self.pos..end]).map_err(|e| e.to_string())?,
                    );
                    self.pos = end;
                }
            }
        }
        Err(self.err("unterminated string"))
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.b.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .b
            .get(self.pos)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).map_err(|e| e.to_string())?;
        match text.parse::<f64>() {
            Ok(n) => Ok(Json::Num(n)),
            Err(_) => {
                self.pos = start;
                Err(self.err(&format!("bad number {text:?}")))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_objects() {
        let v = parse(
            r#"{"op":"submit","id":"j1","circuit":"9sym","deadline_ms":250,
                "seed":7,"priority":"high","flag":true,"opt":null}"#,
        )
        .unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("submit"));
        assert_eq!(v.get("deadline_ms").and_then(Json::as_u64), Some(250));
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("opt"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn round_trips_every_control_character() {
        // All of C0, plus DEL and a few printables for context.
        let mut original = String::new();
        for c in 0u32..0x20 {
            original.push(char::from_u32(c).unwrap());
            original.push('x');
        }
        original.push('\u{7f}');
        let escaped = telemetry::json_escaped(&original);
        let back = parse(&escaped).unwrap();
        assert_eq!(back.as_str(), Some(original.as_str()));
    }

    #[test]
    fn round_trips_non_bmp_text() {
        // Raw supplementary-plane characters (how json_escaped emits
        // them)...
        let original = "circuit \u{1f600} name \u{10348}";
        let back = parse(&telemetry::json_escaped(original)).unwrap();
        assert_eq!(back.as_str(), Some(original));
        // ...and surrogate-pair escapes (how standard encoders emit
        // them) decode to the same scalar.
        let paired = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(paired.as_str(), Some("\u{1f600}"));
    }

    #[test]
    fn rejects_lone_surrogates() {
        for bad in [
            "\"\\ud83d\"",
            "\"\\ud83dx\"",
            "\"\\ude00\"",
            "\"\\ud83d\\u0041\"",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn errors_name_the_offending_field() {
        let e = parse(r#"{"spec":{"engines":[1,)]}}"#).unwrap_err();
        assert!(e.contains("spec.engines[1]"), "missing path in: {e}");
        let e = parse(r#"{"deadline_ms":1e}"#).unwrap_err();
        assert!(e.contains("deadline_ms"), "missing path in: {e}");
        // Top-level errors still carry the byte offset alone.
        let e = parse("[1,]").unwrap_err();
        assert!(e.contains("byte"), "missing offset in: {e}");
    }

    #[test]
    fn parses_nested_arrays_and_numbers() {
        let v = parse("[1, -2.5, [\"x\"], {\"k\": 3e2}]").unwrap();
        let Json::Arr(items) = &v else {
            panic!("not an array")
        };
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[3].get("k").and_then(Json::as_f64), Some(300.0));
        // -2.5 is not integral, so it is not a u64.
        assert_eq!(items[1].as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "nul",
            "\"abc",
            "{\"a\":1} x",
            "1.2.3",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accepts_everything_the_validator_accepts() {
        for good in [
            "null",
            "true",
            "-1.5e-3",
            "[1,2,[]]",
            "{\"a\":{\"b\":[1,\"x\",null]}}",
            "  {}  ",
            "\"\\u00ff\"",
        ] {
            telemetry::validate_json(good).unwrap();
            parse(good).unwrap_or_else(|e| panic!("rejected {good:?}: {e}"));
        }
    }
}
