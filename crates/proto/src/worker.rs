//! The gateway↔worker NDJSON protocol.
//!
//! `gdo-worker` processes dial the gateway's worker port, introduce
//! themselves (`hello` carries the worker's library digest — a worker
//! built against a different cell library is rejected at the door, not
//! discovered through wrong answers), then *pull* jobs: a worker sends
//! one `pull` per slot it can run, the gateway answers each credit with
//! one `assign` when a job is available. This is work stealing across
//! processes — a fast worker pulls more often and naturally claims more
//! of the queue.
//!
//! While running, workers send periodic `beat` lines and per-phase
//! `progress` lines; silence past the heartbeat deadline (or TCP EOF —
//! a SIGKILL closes the socket immediately) tells the gateway the
//! worker is gone, and the in-flight job is requeued to resume from its
//! last checkpoint. Every job ends with exactly one `result` line.
//!
//! Messages are tagged `"w"` (worker→gateway) and `"g"`
//! (gateway→worker):
//!
//! ```json
//! {"w":"hello","name":"w-9","lib":"a1b2c3","protocol":1}
//! {"g":"welcome","heartbeat_ms":2000}
//! {"w":"pull"}
//! {"g":"assign","spec":{"op":"submit","id":"job-1","circuit":"9sym"},
//!  "input":{"format":"bench","text":"INPUT(a)…"}}
//! {"w":"progress","id":"job-1","phase":"engine:gdo","counters":{"gdo.rounds":2}}
//! {"w":"result","id":"job-1","outcome":"done","circuit":"9sym",
//!  "report":{…},"blif":".model…"}
//! ```
//!
//! File-sourced jobs ship the original netlist bytes verbatim in
//! `assign.input` so the worker's parse is byte-identical to a local
//! run; suite-sourced jobs ship no input — the worker regenerates the
//! circuit deterministically from the suite.

use crate::client::{parse_submit_value, submit_to_json, SubmitRequest};
use crate::json::{self, Json};
use crate::report::report_from_json;
use std::fmt::Write as _;
use telemetry::{json_escaped, RunReport};

/// The wire protocol revision; bumped on incompatible message changes.
pub const PROTOCOL_VERSION: u32 = 1;

/// A netlist shipped inline with an assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShippedInput {
    /// Which parser the worker must use.
    pub format: InputFormat,
    /// The original file bytes, verbatim.
    pub text: String,
}

/// The netlist formats a job input can ship as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputFormat {
    /// ISCAS-85 `.bench`.
    Bench,
    /// Berkeley `.blif` (mapped when the text carries `.gate` lines).
    Blif,
}

impl InputFormat {
    /// Stable lower-case protocol name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            InputFormat::Bench => "bench",
            InputFormat::Blif => "blif",
        }
    }

    /// Parses the protocol name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<InputFormat> {
        match name {
            "bench" => Some(InputFormat::Bench),
            "blif" => Some(InputFormat::Blif),
            _ => None,
        }
    }
}

/// One message from a worker to the gateway.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerMsg {
    /// Registration: sent once, first line on the connection.
    Hello {
        /// Worker's self-chosen display name.
        name: String,
        /// Digest of the worker's cell library
        /// ([`library::Library::digest`] hex) — must match the
        /// gateway's.
        lib_digest: String,
        /// The worker's [`PROTOCOL_VERSION`].
        protocol: u32,
    },
    /// One unit of pull credit: "I can run one more job".
    Pull,
    /// Liveness heartbeat.
    Beat,
    /// Per-phase progress of a running job, fanned out to subscribed
    /// clients.
    Progress {
        /// Job id.
        id: String,
        /// What the worker is doing.
        phase: String,
        /// Live per-job counter snapshot.
        counters: Vec<(String, u64)>,
    },
    /// The job's single result.
    Result {
        /// Job id.
        id: String,
        /// How the run ended.
        result: WorkerResult,
    },
}

/// How a worker's run of one job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerResult {
    /// A valid optimized netlist was produced.
    Finished {
        /// `true` when the run was cut short (budget) or rolled back a
        /// verification failure — maps to the client `degraded` event.
        degraded: bool,
        /// Circuit name.
        circuit: String,
        /// The per-job telemetry report.
        report: RunReport,
        /// The optimized netlist as mapped BLIF text.
        blif: String,
    },
    /// The job observed its cancel flag mid-run.
    Cancelled,
    /// The run failed cleanly (bad input, optimizer error).
    Failed {
        /// What went wrong.
        error: String,
    },
    /// The run panicked (caught by the worker's supervisor); the
    /// gateway counts attempts and retries or poisons.
    Panicked {
        /// The panic message.
        error: String,
    },
}

/// One message from the gateway to a worker.
#[derive(Debug, Clone, PartialEq)]
pub enum GatewayMsg {
    /// Registration accepted.
    Welcome {
        /// How often the worker must send `beat` (the gateway reaps
        /// after missing several).
        heartbeat_ms: u64,
    },
    /// Registration refused (library/protocol mismatch); the gateway
    /// closes the connection after this line.
    Reject {
        /// Why.
        reason: String,
    },
    /// One job, answering one unit of pull credit. The spec always
    /// carries the job id; `input` ships the netlist for file-sourced
    /// jobs.
    Assign {
        /// The job spec in client wire form (defaults already applied
        /// by the gateway).
        spec: Box<SubmitRequest>,
        /// Inline netlist for file sources (`None` = suite source).
        input: Option<ShippedInput>,
    },
    /// Cancel a job assigned to this worker.
    Cancel {
        /// Job id.
        id: String,
    },
    /// Finish in-flight work, send results, exit.
    Drain,
}

impl WorkerMsg {
    /// The message's one-line JSON form (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32);
        match self {
            WorkerMsg::Hello {
                name,
                lib_digest,
                protocol,
            } => {
                let _ = write!(
                    out,
                    "{{\"w\":\"hello\",\"name\":{},\"lib\":{},\"protocol\":{protocol}}}",
                    json_escaped(name),
                    json_escaped(lib_digest),
                );
            }
            WorkerMsg::Pull => out.push_str("{\"w\":\"pull\"}"),
            WorkerMsg::Beat => out.push_str("{\"w\":\"beat\"}"),
            WorkerMsg::Progress {
                id,
                phase,
                counters,
            } => {
                let _ = write!(
                    out,
                    "{{\"w\":\"progress\",\"id\":{},\"phase\":{},\"counters\":{{",
                    json_escaped(id),
                    json_escaped(phase),
                );
                for (i, (k, v)) in counters.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{v}", json_escaped(k));
                }
                out.push_str("}}");
            }
            WorkerMsg::Result { id, result } => {
                let _ = write!(out, "{{\"w\":\"result\",\"id\":{}", json_escaped(id));
                match result {
                    WorkerResult::Finished {
                        degraded,
                        circuit,
                        report,
                        blif,
                    } => {
                        let outcome = if *degraded { "degraded" } else { "done" };
                        let _ = write!(
                            out,
                            ",\"outcome\":\"{outcome}\",\"circuit\":{},\"blif\":{},\"report\":{}",
                            json_escaped(circuit),
                            json_escaped(blif),
                            report.to_json(),
                        );
                    }
                    WorkerResult::Cancelled => out.push_str(",\"outcome\":\"cancelled\""),
                    WorkerResult::Failed { error } => {
                        let _ = write!(
                            out,
                            ",\"outcome\":\"failed\",\"error\":{}",
                            json_escaped(error)
                        );
                    }
                    WorkerResult::Panicked { error } => {
                        let _ = write!(
                            out,
                            ",\"outcome\":\"panic\",\"error\":{}",
                            json_escaped(error)
                        );
                    }
                }
                out.push('}');
            }
        }
        out
    }

    /// Parses one worker→gateway line.
    ///
    /// # Errors
    ///
    /// A protocol-level message naming the malformed field.
    pub fn parse(line: &str) -> Result<WorkerMsg, String> {
        let v = json::parse(line).map_err(|e| format!("malformed worker message: {e}"))?;
        let tag = v
            .get("w")
            .and_then(Json::as_str)
            .ok_or_else(|| "worker message needs a string \"w\" tag".to_string())?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{tag} needs a string \"{key}\""))
        };
        match tag {
            "hello" => Ok(WorkerMsg::Hello {
                name: str_field("name")?,
                lib_digest: str_field("lib")?,
                protocol: v
                    .get("protocol")
                    .and_then(Json::as_u64)
                    .ok_or("hello needs an integer \"protocol\"")?
                    .min(u64::from(u32::MAX)) as u32,
            }),
            "pull" => Ok(WorkerMsg::Pull),
            "beat" => Ok(WorkerMsg::Beat),
            "progress" => Ok(WorkerMsg::Progress {
                id: str_field("id")?,
                phase: str_field("phase")?,
                counters: parse_counters(v.get("counters"))?,
            }),
            "result" => {
                let id = str_field("id")?;
                let result = match str_field("outcome")?.as_str() {
                    outcome @ ("done" | "degraded") => WorkerResult::Finished {
                        degraded: outcome == "degraded",
                        circuit: str_field("circuit")?,
                        report: report_from_json(
                            v.get("report").ok_or("result needs a \"report\"")?,
                        )?,
                        blif: str_field("blif")?,
                    },
                    "cancelled" => WorkerResult::Cancelled,
                    "failed" => WorkerResult::Failed {
                        error: str_field("error")?,
                    },
                    "panic" => WorkerResult::Panicked {
                        error: str_field("error")?,
                    },
                    other => return Err(format!("unknown result outcome {other:?}")),
                };
                Ok(WorkerMsg::Result { id, result })
            }
            other => Err(format!("unknown worker message {other:?}")),
        }
    }
}

fn parse_counters(v: Option<&Json>) -> Result<Vec<(String, u64)>, String> {
    let Some(obj) = v.and_then(Json::as_obj) else {
        return Ok(Vec::new());
    };
    obj.iter()
        .map(|(k, x)| {
            x.as_u64()
                .map(|n| (k.clone(), n))
                .ok_or_else(|| format!("counter {k} must be a non-negative integer"))
        })
        .collect()
}

impl GatewayMsg {
    /// The message's one-line JSON form (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32);
        match self {
            GatewayMsg::Welcome { heartbeat_ms } => {
                let _ = write!(out, "{{\"g\":\"welcome\",\"heartbeat_ms\":{heartbeat_ms}}}");
            }
            GatewayMsg::Reject { reason } => {
                let _ = write!(
                    out,
                    "{{\"g\":\"reject\",\"reason\":{}}}",
                    json_escaped(reason)
                );
            }
            GatewayMsg::Assign { spec, input } => {
                let _ = write!(out, "{{\"g\":\"assign\",\"spec\":{}", submit_to_json(spec));
                if let Some(i) = input {
                    let _ = write!(
                        out,
                        ",\"input\":{{\"format\":\"{}\",\"text\":{}}}",
                        i.format.name(),
                        json_escaped(&i.text),
                    );
                }
                out.push('}');
            }
            GatewayMsg::Cancel { id } => {
                let _ = write!(out, "{{\"g\":\"cancel\",\"id\":{}}}", json_escaped(id));
            }
            GatewayMsg::Drain => out.push_str("{\"g\":\"drain\"}"),
        }
        out
    }

    /// Parses one gateway→worker line.
    ///
    /// # Errors
    ///
    /// A protocol-level message naming the malformed field.
    pub fn parse(line: &str) -> Result<GatewayMsg, String> {
        let v = json::parse(line).map_err(|e| format!("malformed gateway message: {e}"))?;
        let tag = v
            .get("g")
            .and_then(Json::as_str)
            .ok_or_else(|| "gateway message needs a string \"g\" tag".to_string())?;
        match tag {
            "welcome" => Ok(GatewayMsg::Welcome {
                heartbeat_ms: v
                    .get("heartbeat_ms")
                    .and_then(Json::as_u64)
                    .ok_or("welcome needs an integer \"heartbeat_ms\"")?,
            }),
            "reject" => Ok(GatewayMsg::Reject {
                reason: v
                    .get("reason")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified")
                    .to_string(),
            }),
            "assign" => {
                let spec = parse_submit_value(v.get("spec").ok_or("assign needs a \"spec\"")?)?;
                let input = match v.get("input") {
                    None | Some(Json::Null) => None,
                    Some(i) => {
                        let format = i
                            .get("format")
                            .and_then(Json::as_str)
                            .and_then(InputFormat::from_name)
                            .ok_or("assign input needs a format of bench or blif")?;
                        let text = i
                            .get("text")
                            .and_then(Json::as_str)
                            .ok_or("assign input needs a string \"text\"")?
                            .to_string();
                        Some(ShippedInput { format, text })
                    }
                };
                Ok(GatewayMsg::Assign {
                    spec: Box::new(spec),
                    input,
                })
            }
            "cancel" => Ok(GatewayMsg::Cancel {
                id: v
                    .get("id")
                    .and_then(Json::as_str)
                    .ok_or("cancel needs a string \"id\"")?
                    .to_string(),
            }),
            "drain" => Ok(GatewayMsg::Drain),
            other => Err(format!("unknown gateway message {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{JobSource, Priority};

    fn spec() -> SubmitRequest {
        SubmitRequest {
            id: Some("job-4".into()),
            source: JobSource::File("/tmp/a.bench".into()),
            deadline_ms: None,
            work_limit: Some(500),
            seed: Some(1995),
            vectors: None,
            verify: None,
            engines: Some("gdo,resub".into()),
            partitions: None,
            priority: Priority::Normal,
            resume: None,
            checkpoint: Some("/tmp/j/job-4.ckpt".into()),
            want_netlist: false,
            want_progress: false,
            panic_attempts: None,
        }
    }

    #[test]
    fn worker_messages_round_trip() {
        let mut report = RunReport::default();
        report.meta.insert("circuit".into(), "a".into());
        report.summary.insert("delay_after".into(), 3.25);
        let msgs = [
            WorkerMsg::Hello {
                name: "w-1".into(),
                lib_digest: "ab12".into(),
                protocol: PROTOCOL_VERSION,
            },
            WorkerMsg::Pull,
            WorkerMsg::Beat,
            WorkerMsg::Progress {
                id: "job-4".into(),
                phase: "engine:gdo".into(),
                counters: vec![("gdo.rounds".into(), 2), ("verify.checks".into(), 1)],
            },
            WorkerMsg::Result {
                id: "job-4".into(),
                result: WorkerResult::Finished {
                    degraded: false,
                    circuit: "a".into(),
                    report,
                    blif: ".model a\n.end\n".into(),
                },
            },
            WorkerMsg::Result {
                id: "job-5".into(),
                result: WorkerResult::Cancelled,
            },
            WorkerMsg::Result {
                id: "job-6".into(),
                result: WorkerResult::Failed {
                    error: "no such circuit".into(),
                },
            },
            WorkerMsg::Result {
                id: "job-7".into(),
                result: WorkerResult::Panicked {
                    error: "index out of bounds".into(),
                },
            },
        ];
        for m in &msgs {
            let line = m.to_json();
            telemetry::validate_json(&line)
                .unwrap_or_else(|e| panic!("invalid JSON {line:?}: {e}"));
            assert!(!line.contains('\n'));
            assert_eq!(&WorkerMsg::parse(&line).unwrap(), m, "round trip {line:?}");
        }
    }

    #[test]
    fn gateway_messages_round_trip() {
        let msgs = [
            GatewayMsg::Welcome { heartbeat_ms: 2000 },
            GatewayMsg::Reject {
                reason: "library digest mismatch".into(),
            },
            GatewayMsg::Assign {
                spec: Box::new(spec()),
                input: Some(ShippedInput {
                    format: InputFormat::Bench,
                    text: "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n".into(),
                }),
            },
            GatewayMsg::Assign {
                spec: Box::new(SubmitRequest {
                    source: JobSource::Suite("9sym".into()),
                    ..spec()
                }),
                input: None,
            },
            GatewayMsg::Cancel { id: "job-4".into() },
            GatewayMsg::Drain,
        ];
        for m in &msgs {
            let line = m.to_json();
            telemetry::validate_json(&line)
                .unwrap_or_else(|e| panic!("invalid JSON {line:?}: {e}"));
            assert!(!line.contains('\n'));
            assert_eq!(&GatewayMsg::parse(&line).unwrap(), m, "round trip {line:?}");
        }
    }

    #[test]
    fn rejects_malformed_messages() {
        for bad in [
            "{}",
            r#"{"w":"frob"}"#,
            r#"{"w":"hello","name":"x"}"#,
            r#"{"w":"result","id":"j","outcome":"done"}"#,
            r#"{"w":"result","id":"j","outcome":"sideways"}"#,
            r#"{"g":"assign"}"#,
            r#"{"g":"assign","spec":{"op":"submit","circuit":"a"},"input":{"format":"vhdl","text":""}}"#,
        ] {
            assert!(
                WorkerMsg::parse(bad).is_err() && GatewayMsg::parse(bad).is_err(),
                "accepted {bad:?}"
            );
        }
    }
}
