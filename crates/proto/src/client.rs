//! The client↔server NDJSON protocol (`gdo-served` and `gdo-gateway`).
//!
//! One JSON object per line in both directions. Requests are parsed with
//! the hand-rolled [`crate::json`] reader; responses are serialized with
//! the same escaping as [`telemetry`]'s writers, so a stream of events is
//! valid NDJSON end to end.
//!
//! ## Requests
//!
//! ```json
//! {"op":"submit","id":"j1","circuit":"9sym","deadline_ms":250,"seed":7,
//!  "work_limit":500,"vectors":512,"verify":"every:8","priority":"high"}
//! {"op":"submit","file":"/tmp/dp96.bench","netlist":true}
//! {"op":"status"}
//! {"op":"cancel","id":"j1"}
//! {"op":"drain"}
//! ```
//!
//! A submit names its circuit either by workload-suite entry (`circuit`)
//! or by netlist file path (`file`), exactly one of the two. All other
//! fields are optional; the server assigns ids (`job-N`) and applies its
//! configured defaults. `"netlist":true` asks for the optimized netlist
//! (mapped BLIF text) inline in the terminal event; `"progress":true`
//! subscribes to streamed per-phase progress events while the job runs.
//!
//! ## Responses
//!
//! Every submitted job produces exactly one `accepted` or `rejected`
//! event, and every accepted job exactly one terminal event:
//! `done` (full run), `degraded` (valid result, but the budget expired
//! or a verification rollback fired), `failed` (bad input or internal
//! error) or `cancelled`. Finished jobs carry their full
//! [`telemetry::RunReport`] inline under `"report"`; a terminal served
//! from the gateway's result cache additionally carries `"cached":true`.

use crate::json::{self, Json};
use gdo::VerifyPolicy;
use std::fmt::Write as _;
use std::path::PathBuf;
use telemetry::{json_escaped, RunReport};

/// Where a job's circuit comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobSource {
    /// A named entry of the workload suite ([`workloads::lookup_circuit`]).
    Suite(String),
    /// A `.bench` / `.blif` netlist file readable by the serving process.
    File(PathBuf),
}

impl JobSource {
    /// A short human-readable description for events and errors.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            JobSource::Suite(name) => name.clone(),
            JobSource::File(path) => path.display().to_string(),
        }
    }
}

/// Priority lane of one queued job. Strictly ordered: all queued
/// higher-priority jobs dequeue before any lower-priority one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Latency-sensitive lane.
    High,
    /// The default lane.
    #[default]
    Normal,
    /// Bulk/batch lane.
    Low,
}

impl Priority {
    /// Lane index, `0` = highest.
    #[must_use]
    pub fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Stable lower-case protocol name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses the protocol name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Priority> {
        match name {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit one optimization job.
    Submit(Box<SubmitRequest>),
    /// Report queue depth, in-flight jobs, and aggregate counters.
    Status,
    /// Cancel a queued or running job by id.
    Cancel {
        /// The id from the job's `accepted` event.
        id: String,
    },
    /// Stop admitting, finish in-flight jobs, flush reports, shut down.
    Drain,
}

/// The payload of a `submit` request (defaults unapplied — `None` means
/// "use the server's default").
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitRequest {
    /// Client-chosen job id; server assigns `job-N` when absent.
    pub id: Option<String>,
    /// What to optimize.
    pub source: JobSource,
    /// Wall-clock budget for the optimization, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Deterministic work-unit ceiling.
    pub work_limit: Option<u64>,
    /// BPFS seed (threaded into per-job vector generation).
    pub seed: Option<u64>,
    /// BPFS vectors per round.
    pub vectors: Option<usize>,
    /// Checkpointed verify-with-rollback policy.
    pub verify: Option<VerifyPolicy>,
    /// Engine pipeline, comma-separated (`"gdo,resub"`; absent = GDO
    /// alone). Unknown names are rejected at admission with the list of
    /// valid engines.
    pub engines: Option<String>,
    /// Partitioned optimization: cluster into roughly this many regions
    /// (`0`/absent = whole-netlist run).
    pub partitions: Option<usize>,
    /// Queue lane.
    pub priority: Priority,
    /// Resume from a snapshot file written by an earlier interrupted run
    /// of the same spec. An unreadable or mismatched snapshot is
    /// rejected cleanly and the job restarts from scratch.
    pub resume: Option<PathBuf>,
    /// Write run snapshots to this path (overrides the server's
    /// journal-managed per-job checkpoint path).
    pub checkpoint: Option<PathBuf>,
    /// Return the optimized netlist (mapped BLIF text) inline in the
    /// terminal event.
    pub want_netlist: bool,
    /// Stream per-phase `progress` events to this client while the job
    /// runs (gateway only; `gdo-served` ignores it).
    pub want_progress: bool,
    /// Fault injection: panic the worker this many times before letting
    /// the job run. Parsed unconditionally, honored only when the server
    /// is built with the `fault-inject` feature.
    pub panic_attempts: Option<u32>,
}

/// Parses one NDJSON request line.
///
/// # Errors
///
/// A protocol-level message (malformed JSON, unknown `op`, missing or
/// conflicting fields) the server echoes back as an `error` event.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = json::parse(line).map_err(|e| format!("malformed request JSON: {e}"))?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "request needs a string \"op\" field".to_string())?;
    match op {
        "status" => Ok(Request::Status),
        "drain" | "shutdown" => Ok(Request::Drain),
        "cancel" => {
            let id = v
                .get("id")
                .and_then(Json::as_str)
                .ok_or_else(|| "cancel needs a string \"id\"".to_string())?;
            Ok(Request::Cancel { id: id.to_string() })
        }
        "submit" => parse_submit_value(&v).map(|s| Request::Submit(Box::new(s))),
        other => Err(format!(
            "unknown op {other:?} (expected submit, status, cancel or drain)"
        )),
    }
}

/// Parses a submit request whose fields sit in `v` — shared between
/// [`parse_request`], the job journal's replay path, and the gateway's
/// worker-assignment shipping, so every spec consumer round-trips
/// through exactly the wire parser.
///
/// # Errors
///
/// A protocol-level message naming the missing or malformed field.
pub fn parse_submit_value(v: &Json) -> Result<SubmitRequest, String> {
    let circuit = v.get("circuit").and_then(Json::as_str);
    let file = v.get("file").and_then(Json::as_str);
    let source = match (circuit, file) {
        (Some(name), None) => JobSource::Suite(name.to_string()),
        (None, Some(path)) => JobSource::File(path.into()),
        (Some(_), Some(_)) => {
            return Err("submit takes either \"circuit\" or \"file\", not both".to_string())
        }
        (None, None) => {
            return Err("submit needs a \"circuit\" (suite name) or \"file\" (path)".to_string())
        }
    };
    let uint = |key: &str| -> Result<Option<u64>, String> {
        match v.get(key) {
            None | Some(Json::Null) => Ok(None),
            Some(x) => x
                .as_u64()
                .map(Some)
                .ok_or_else(|| format!("\"{key}\" must be a non-negative integer")),
        }
    };
    let flag = |key: &str| -> Result<bool, String> {
        match v.get(key) {
            None | Some(Json::Null) => Ok(false),
            Some(x) => x
                .as_bool()
                .ok_or_else(|| format!("\"{key}\" must be a boolean")),
        }
    };
    let verify = match v.get("verify").and_then(Json::as_str) {
        None => None,
        Some(s) => Some(parse_verify(s)?),
    };
    let priority = match v.get("priority").and_then(Json::as_str) {
        None => Priority::Normal,
        Some(s) => Priority::from_name(s)
            .ok_or_else(|| format!("\"priority\" must be high, normal or low, got {s:?}"))?,
    };
    Ok(SubmitRequest {
        id: v.get("id").and_then(Json::as_str).map(str::to_string),
        source,
        deadline_ms: uint("deadline_ms")?,
        work_limit: uint("work_limit")?,
        seed: uint("seed")?,
        vectors: uint("vectors")?.map(|n| n as usize),
        verify,
        engines: v.get("engines").and_then(Json::as_str).map(str::to_string),
        partitions: uint("partitions")?.map(|n| n as usize),
        priority,
        resume: v.get("resume").and_then(Json::as_str).map(Into::into),
        checkpoint: v.get("checkpoint").and_then(Json::as_str).map(Into::into),
        want_netlist: flag("netlist")?,
        want_progress: flag("progress")?,
        panic_attempts: uint("panic_attempts")?.map(|n| n.min(u64::from(u32::MAX)) as u32),
    })
}

/// Parses the protocol encoding of a [`VerifyPolicy`]:
/// `off`, `final`, `each`, or `every:N`.
///
/// # Errors
///
/// A message naming the valid encodings.
pub fn parse_verify(s: &str) -> Result<VerifyPolicy, String> {
    match s {
        "off" => Ok(VerifyPolicy::Off),
        "final" => Ok(VerifyPolicy::Final),
        "each" => Ok(VerifyPolicy::EachSubstitution),
        other => {
            if let Some(n) = other.strip_prefix("every:") {
                let k: usize = n
                    .parse()
                    .map_err(|_| format!("bad verify interval {n:?}"))?;
                if k == 0 {
                    return Err("verify interval must be positive".to_string());
                }
                return Ok(VerifyPolicy::EveryN(k));
            }
            Err(format!(
                "\"verify\" must be off, final, each or every:N, got {other:?}"
            ))
        }
    }
}

/// Serializes a submit request back to its protocol line — the client
/// side (`gdo-submit`), the batch-file writer, the job journal, and the
/// gateway's worker shipping share this with the parser, so none of
/// them can drift.
#[must_use]
pub fn submit_to_json(r: &SubmitRequest) -> String {
    let mut out = String::from("{\"op\":\"submit\"");
    if let Some(id) = &r.id {
        let _ = write!(out, ",\"id\":{}", json_escaped(id));
    }
    match &r.source {
        JobSource::Suite(name) => {
            let _ = write!(out, ",\"circuit\":{}", json_escaped(name));
        }
        JobSource::File(path) => {
            let _ = write!(
                out,
                ",\"file\":{}",
                json_escaped(&path.display().to_string())
            );
        }
    }
    if let Some(ms) = r.deadline_ms {
        let _ = write!(out, ",\"deadline_ms\":{ms}");
    }
    if let Some(w) = r.work_limit {
        let _ = write!(out, ",\"work_limit\":{w}");
    }
    if let Some(s) = r.seed {
        let _ = write!(out, ",\"seed\":{s}");
    }
    if let Some(n) = r.vectors {
        let _ = write!(out, ",\"vectors\":{n}");
    }
    if let Some(p) = r.verify {
        let _ = write!(out, ",\"verify\":{}", json_escaped(&verify_name(p)));
    }
    if let Some(e) = &r.engines {
        let _ = write!(out, ",\"engines\":{}", json_escaped(e));
    }
    if let Some(p) = r.partitions {
        let _ = write!(out, ",\"partitions\":{p}");
    }
    if r.priority != Priority::Normal {
        let _ = write!(out, ",\"priority\":{}", json_escaped(r.priority.name()));
    }
    if let Some(path) = &r.resume {
        let _ = write!(
            out,
            ",\"resume\":{}",
            json_escaped(&path.display().to_string())
        );
    }
    if let Some(path) = &r.checkpoint {
        let _ = write!(
            out,
            ",\"checkpoint\":{}",
            json_escaped(&path.display().to_string())
        );
    }
    if r.want_netlist {
        out.push_str(",\"netlist\":true");
    }
    if r.want_progress {
        out.push_str(",\"progress\":true");
    }
    if let Some(n) = r.panic_attempts {
        let _ = write!(out, ",\"panic_attempts\":{n}");
    }
    out.push('}');
    out
}

/// The protocol encoding of a [`VerifyPolicy`] (inverse of
/// [`parse_verify`]).
#[must_use]
pub fn verify_name(p: VerifyPolicy) -> String {
    match p {
        VerifyPolicy::Off => "off".to_string(),
        VerifyPolicy::Final => "final".to_string(),
        VerifyPolicy::EachSubstitution => "each".to_string(),
        VerifyPolicy::EveryN(k) => format!("every:{k}"),
    }
}

/// One response event, streamed back as an NDJSON line.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// The job passed admission and is queued.
    Accepted {
        /// Job id (server-assigned when the request carried none).
        id: String,
        /// Queue lane.
        priority: Priority,
        /// Queue depth right after admission.
        queue_depth: usize,
    },
    /// Admission failed (queue full, draining, duplicate id, bad
    /// request, load shed). Terminal.
    Rejected {
        /// Job id (or the client's attempted id).
        id: String,
        /// Why admission failed.
        reason: String,
    },
    /// A worker picked the job up.
    Started {
        /// Job id.
        id: String,
        /// Worker index (pool index on `gdo-served`, registration order
        /// on the gateway).
        worker: usize,
        /// Circuit name being optimized.
        circuit: String,
    },
    /// Streamed per-phase progress while the job runs (only for submits
    /// with `"progress":true`). Not terminal.
    Progress {
        /// Job id.
        id: String,
        /// What the worker is doing (`engine:gdo`, `regions`, …).
        phase: String,
        /// Live counter snapshot deltas for this job.
        counters: Vec<(String, u64)>,
    },
    /// The job finished its full run. Terminal.
    Done {
        /// Job id.
        id: String,
        /// The per-job telemetry report.
        report: RunReport,
        /// Whether this terminal was served from the gateway's result
        /// cache instead of a fresh worker run.
        cached: bool,
        /// The optimized netlist (mapped BLIF) when the submit asked
        /// for it with `"netlist":true`.
        blif: Option<String>,
    },
    /// The job produced a valid result but was cut short (budget
    /// exhausted) or rolled back a verification failure. Terminal.
    Degraded {
        /// Job id.
        id: String,
        /// The per-job telemetry report.
        report: RunReport,
        /// Whether this terminal was served from the gateway's result
        /// cache (never true today — only `done` results are cached).
        cached: bool,
        /// The optimized netlist (mapped BLIF) when the submit asked
        /// for it with `"netlist":true`.
        blif: Option<String>,
    },
    /// The job failed (bad input, optimizer error). Terminal.
    Failed {
        /// Job id.
        id: String,
        /// What went wrong.
        error: String,
    },
    /// The job was cancelled by id, before or during its run. Terminal.
    Cancelled {
        /// Job id.
        id: String,
    },
    /// The job's worker panicked on every attempt; the job is
    /// quarantined rather than retried forever. Terminal.
    Poisoned {
        /// Job id.
        id: String,
        /// How many attempts were made (first run plus retries).
        attempts: u32,
        /// The last panic's message.
        error: String,
    },
    /// Answer to cancelling a job that already reached its terminal
    /// event — structured instead of an `error`, so automation can tell
    /// a lost race from a typo'd id. Not terminal: the job's single
    /// terminal event was already emitted.
    AlreadyFinished {
        /// Job id.
        id: String,
        /// The terminal outcome the job already reached
        /// (`done`, `degraded`, `failed`, `cancelled`, `poisoned`).
        outcome: String,
    },
    /// Answer to a `status` request.
    Status {
        /// Jobs waiting in the queue.
        queue_depth: usize,
        /// Jobs currently running on workers.
        running: usize,
        /// Whether the server is draining.
        draining: bool,
        /// Aggregate counters (`jobs_accepted`, `jobs_done`, …).
        counters: Vec<(&'static str, u64)>,
    },
    /// Drain started: no further admissions.
    Draining,
    /// Drain complete: all in-flight jobs finished and reports flushed.
    Drained {
        /// Milliseconds from the drain request to the last job.
        drain_ms: u64,
    },
    /// Protocol-level error for one request line (not tied to a job).
    Error {
        /// The parse/validation message.
        error: String,
    },
}

impl Event {
    /// A `done`/`degraded` terminal with no cache or netlist decoration
    /// — the common case on `gdo-served`.
    #[must_use]
    pub fn finished(id: String, degraded: bool, report: RunReport) -> Event {
        if degraded {
            Event::Degraded {
                id,
                report,
                cached: false,
                blif: None,
            }
        } else {
            Event::Done {
                id,
                report,
                cached: false,
                blif: None,
            }
        }
    }

    /// The event's one-line JSON form (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        match self {
            Event::Accepted {
                id,
                priority,
                queue_depth,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"accepted\",\"id\":{},\"priority\":{},\"queue_depth\":{queue_depth}}}",
                    json_escaped(id),
                    json_escaped(priority.name()),
                );
            }
            Event::Rejected { id, reason } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"rejected\",\"id\":{},\"reason\":{}}}",
                    json_escaped(id),
                    json_escaped(reason),
                );
            }
            Event::Started {
                id,
                worker,
                circuit,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"started\",\"id\":{},\"worker\":{worker},\"circuit\":{}}}",
                    json_escaped(id),
                    json_escaped(circuit),
                );
            }
            Event::Progress {
                id,
                phase,
                counters,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"progress\",\"id\":{},\"phase\":{},\"counters\":{{",
                    json_escaped(id),
                    json_escaped(phase),
                );
                for (i, (k, v)) in counters.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{v}", json_escaped(k));
                }
                out.push_str("}}");
            }
            Event::Done {
                id,
                report,
                cached,
                blif,
            } => {
                let _ = write!(out, "{{\"event\":\"done\",\"id\":{}", json_escaped(id),);
                if *cached {
                    out.push_str(",\"cached\":true");
                }
                if let Some(b) = blif {
                    let _ = write!(out, ",\"blif\":{}", json_escaped(b));
                }
                let _ = write!(out, ",\"report\":{}}}", report.to_json());
            }
            Event::Degraded {
                id,
                report,
                cached,
                blif,
            } => {
                let _ = write!(out, "{{\"event\":\"degraded\",\"id\":{}", json_escaped(id),);
                if *cached {
                    out.push_str(",\"cached\":true");
                }
                if let Some(b) = blif {
                    let _ = write!(out, ",\"blif\":{}", json_escaped(b));
                }
                let _ = write!(out, ",\"report\":{}}}", report.to_json());
            }
            Event::Failed { id, error } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"failed\",\"id\":{},\"error\":{}}}",
                    json_escaped(id),
                    json_escaped(error),
                );
            }
            Event::Cancelled { id } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"cancelled\",\"id\":{}}}",
                    json_escaped(id)
                );
            }
            Event::Poisoned {
                id,
                attempts,
                error,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"poisoned\",\"id\":{},\"attempts\":{attempts},\"error\":{}}}",
                    json_escaped(id),
                    json_escaped(error),
                );
            }
            Event::AlreadyFinished { id, outcome } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"already_finished\",\"id\":{},\"outcome\":{}}}",
                    json_escaped(id),
                    json_escaped(outcome),
                );
            }
            Event::Status {
                queue_depth,
                running,
                draining,
                counters,
            } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"status\",\"queue_depth\":{queue_depth},\"running\":{running},\"draining\":{draining},\"counters\":{{",
                );
                for (i, (k, v)) in counters.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{v}", json_escaped(k));
                }
                out.push_str("}}");
            }
            Event::Draining => out.push_str("{\"event\":\"draining\"}"),
            Event::Drained { drain_ms } => {
                let _ = write!(out, "{{\"event\":\"drained\",\"drain_ms\":{drain_ms}}}");
            }
            Event::Error { error } => {
                let _ = write!(
                    out,
                    "{{\"event\":\"error\",\"error\":{}}}",
                    json_escaped(error)
                );
            }
        }
        out
    }

    /// Whether this event ends a submitted job's lifecycle.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Event::Rejected { .. }
                | Event::Done { .. }
                | Event::Degraded { .. }
                | Event::Failed { .. }
                | Event::Cancelled { .. }
                | Event::Poisoned { .. }
        )
    }

    /// The outcome name recorded in the job journal and the finished map
    /// for a terminal event (`None` for non-terminal events).
    #[must_use]
    pub fn terminal_outcome(&self) -> Option<&'static str> {
        match self {
            Event::Rejected { .. } => Some("rejected"),
            Event::Done { .. } => Some("done"),
            Event::Degraded { .. } => Some("degraded"),
            Event::Failed { .. } => Some("failed"),
            Event::Cancelled { .. } => Some("cancelled"),
            Event::Poisoned { .. } => Some("poisoned"),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_submit() {
        let r = parse_request(
            r#"{"op":"submit","id":"j9","circuit":"9sym","deadline_ms":250,
                "work_limit":100,"seed":7,"vectors":128,"verify":"every:4",
                "engines":"gdo,resub","partitions":4,"priority":"high",
                "netlist":true,"progress":true}"#,
        )
        .unwrap();
        let Request::Submit(s) = r else {
            panic!("not a submit")
        };
        assert_eq!(s.id.as_deref(), Some("j9"));
        assert_eq!(s.source, JobSource::Suite("9sym".to_string()));
        assert_eq!(s.deadline_ms, Some(250));
        assert_eq!(s.work_limit, Some(100));
        assert_eq!(s.seed, Some(7));
        assert_eq!(s.vectors, Some(128));
        assert_eq!(s.verify, Some(VerifyPolicy::EveryN(4)));
        assert_eq!(s.engines.as_deref(), Some("gdo,resub"));
        assert_eq!(s.partitions, Some(4));
        assert_eq!(s.priority, Priority::High);
        assert!(s.want_netlist);
        assert!(s.want_progress);
    }

    #[test]
    fn submit_round_trips_through_its_writer() {
        let original = SubmitRequest {
            id: Some("a \"quoted\" id".to_string()),
            source: JobSource::File("/tmp/x.bench".into()),
            deadline_ms: Some(1),
            work_limit: None,
            seed: Some(1995),
            vectors: None,
            verify: Some(VerifyPolicy::Final),
            engines: Some("gdo,resub".to_string()),
            partitions: Some(8),
            priority: Priority::Low,
            resume: Some("/tmp/x.ckpt".into()),
            checkpoint: Some("/tmp/x next.ckpt".into()),
            want_netlist: true,
            want_progress: true,
            panic_attempts: Some(2),
        };
        let line = submit_to_json(&original);
        telemetry::validate_json(&line).unwrap();
        let Request::Submit(back) = parse_request(&line).unwrap() else {
            panic!("not a submit")
        };
        assert_eq!(*back, original);
    }

    #[test]
    fn minimal_and_control_requests() {
        assert_eq!(
            parse_request(r#"{"op":"status"}"#).unwrap(),
            Request::Status
        );
        assert_eq!(parse_request(r#"{"op":"drain"}"#).unwrap(), Request::Drain);
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#).unwrap(),
            Request::Drain
        );
        assert_eq!(
            parse_request(r#"{"op":"cancel","id":"j1"}"#).unwrap(),
            Request::Cancel {
                id: "j1".to_string()
            }
        );
        let Request::Submit(s) = parse_request(r#"{"op":"submit","circuit":"rot"}"#).unwrap()
        else {
            panic!("not a submit")
        };
        assert_eq!(s.id, None);
        assert_eq!(s.priority, Priority::Normal);
        assert_eq!(s.verify, None);
        assert_eq!(s.resume, None);
        assert_eq!(s.checkpoint, None);
        assert!(!s.want_netlist);
        assert!(!s.want_progress);
        assert_eq!(s.panic_attempts, None);
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            "{}",
            r#"{"op":"frob"}"#,
            r#"{"op":"cancel"}"#,
            r#"{"op":"submit"}"#,
            r#"{"op":"submit","circuit":"a","file":"b"}"#,
            r#"{"op":"submit","circuit":"a","deadline_ms":-1}"#,
            r#"{"op":"submit","circuit":"a","verify":"sometimes"}"#,
            r#"{"op":"submit","circuit":"a","verify":"every:0"}"#,
            r#"{"op":"submit","circuit":"a","priority":"urgent"}"#,
            r#"{"op":"submit","circuit":"a","netlist":"yes"}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn events_serialize_to_valid_ndjson() {
        let mut report = RunReport::default();
        report.meta.insert("circuit".into(), "9sym".into());
        let events = [
            Event::Accepted {
                id: "j1".into(),
                priority: Priority::High,
                queue_depth: 3,
            },
            Event::Rejected {
                id: "j2".into(),
                reason: "queue full".into(),
            },
            Event::Started {
                id: "j1".into(),
                worker: 0,
                circuit: "9sym".into(),
            },
            Event::Done {
                id: "j1".into(),
                report: report.clone(),
                cached: false,
                blif: None,
            },
            Event::Degraded {
                id: "j3".into(),
                report,
                cached: false,
                blif: None,
            },
            Event::Failed {
                id: "j4".into(),
                error: "boom \"quoted\"".into(),
            },
            Event::Cancelled { id: "j5".into() },
            Event::Poisoned {
                id: "j6".into(),
                attempts: 3,
                error: "worker panic: index out of bounds".into(),
            },
            Event::AlreadyFinished {
                id: "j1".into(),
                outcome: "done".into(),
            },
            Event::Status {
                queue_depth: 2,
                running: 4,
                draining: false,
                counters: vec![("jobs_accepted", 6), ("jobs_done", 1)],
            },
            Event::Draining,
            Event::Drained { drain_ms: 12 },
            Event::Error {
                error: "bad line".into(),
            },
            Event::Progress {
                id: "j1".into(),
                phase: "engine:gdo".into(),
                counters: vec![("partition.regions_done".into(), 3)],
            },
        ];
        for e in &events {
            let line = e.to_json();
            telemetry::validate_json(&line)
                .unwrap_or_else(|err| panic!("invalid event JSON {line:?}: {err}"));
            assert!(!line.contains('\n'), "event must be a single line");
        }
        assert!(events[1].is_terminal());
        assert!(events[3].is_terminal());
        assert!(events[7].is_terminal(), "poisoned ends the job");
        assert!(!events[0].is_terminal());
        assert!(!events[8].is_terminal(), "already_finished is informative");
        assert!(!events[13].is_terminal(), "progress streams mid-run");
        assert_eq!(events[3].terminal_outcome(), Some("done"));
        assert_eq!(events[7].terminal_outcome(), Some("poisoned"));
        assert_eq!(events[0].terminal_outcome(), None);
        // The inline report keeps its versioned schema.
        assert!(events[3]
            .to_json()
            .contains("\"schema\":\"gdo-telemetry/1\""));
    }

    #[test]
    fn cached_and_netlist_decorations_serialize() {
        let e = Event::Done {
            id: "j1".into(),
            report: RunReport::default(),
            cached: true,
            blif: Some(".model x\n.end\n".into()),
        };
        let line = e.to_json();
        telemetry::validate_json(&line).unwrap();
        assert!(line.contains("\"cached\":true"));
        assert!(line.contains("\"blif\":"));
        // Undecorated events stay byte-compatible with the original
        // protocol: no cached/blif keys at all.
        let plain = Event::finished("j1".into(), false, RunReport::default()).to_json();
        assert!(!plain.contains("cached"));
        assert!(!plain.contains("blif"));
    }
}
