//! Parsing [`telemetry::RunReport`] back from its JSON schema.
//!
//! [`telemetry`] only writes reports; the gateway must also *read* them
//! — a worker ships its finished report as JSON, and the result cache
//! replays stored reports with the requesting job's id patched in. The
//! parser here is the exact inverse of [`RunReport::to_json`]: for every
//! report `r`, `parse_report(&r.to_json()) == r` and re-serializing
//! produces the identical byte string (Rust's `f64` formatting is
//! shortest-round-trip, so numbers survive the loop exactly).

use crate::json::{self, Json};
use telemetry::{RunReport, SpanStat};

/// Parses one serialized report line.
///
/// # Errors
///
/// A message naming the malformed field.
pub fn parse_report(text: &str) -> Result<RunReport, String> {
    let v = json::parse(text).map_err(|e| format!("malformed report JSON: {e}"))?;
    report_from_json(&v)
}

/// Builds a report from an already-parsed JSON value (e.g. the
/// `"report"` member of a worker result message).
///
/// # Errors
///
/// A message naming the malformed field.
pub fn report_from_json(v: &Json) -> Result<RunReport, String> {
    if v.as_obj().is_none() {
        return Err("report must be a JSON object".to_string());
    }
    let mut report = RunReport::default();
    if let Some(m) = v.get("meta").and_then(Json::as_obj) {
        for (k, x) in m {
            let s = x
                .as_str()
                .ok_or_else(|| format!("report meta.{k} must be a string"))?;
            report.meta.insert(k.clone(), s.to_string());
        }
    }
    if let Some(m) = v.get("counters").and_then(Json::as_obj) {
        for (k, x) in m {
            let n = x
                .as_u64()
                .ok_or_else(|| format!("report counters.{k} must be a non-negative integer"))?;
            report.counters.insert(k.clone(), n);
        }
    }
    if let Some(m) = v.get("gauges").and_then(Json::as_obj) {
        for (k, x) in m {
            let n =
                number_or_null(x).ok_or_else(|| format!("report gauges.{k} must be a number"))?;
            report.gauges.insert(k.clone(), n);
        }
    }
    if let Some(m) = v.get("spans").and_then(Json::as_obj) {
        for (k, x) in m {
            let field = |name: &str| -> Result<f64, String> {
                number_or_null(x.get(name).unwrap_or(&Json::Null))
                    .ok_or_else(|| format!("report spans.{k}.{name} must be a number"))
            };
            report.spans.insert(
                k.clone(),
                SpanStat {
                    count: x
                        .get("count")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| format!("report spans.{k}.count must be an integer"))?,
                    total_s: field("total_s")?,
                    max_s: field("max_s")?,
                },
            );
        }
    }
    if let Some(m) = v.get("summary").and_then(Json::as_obj) {
        for (k, x) in m {
            let n =
                number_or_null(x).ok_or_else(|| format!("report summary.{k} must be a number"))?;
            report.summary.insert(k.clone(), n);
        }
    }
    Ok(report)
}

/// The report writer emits non-finite values as `null`; map them back
/// to NaN so a round trip stays lossless in shape.
fn number_or_null(v: &Json) -> Option<f64> {
    match v {
        Json::Num(n) => Some(*n),
        Json::Null => Some(f64::NAN),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_byte_identically() {
        let mut r = RunReport::default();
        r.meta.insert("circuit".into(), "9sym".into());
        r.meta.insert("job".into(), "job-3".into());
        r.counters.insert("engine.gdo.applied".into(), 17);
        r.counters.insert("verify.checks".into(), 2);
        r.gauges.insert("queue.depth".into(), 3.5);
        r.spans.insert(
            "optimize".into(),
            SpanStat {
                count: 4,
                total_s: 0.125,
                max_s: 0.0625,
            },
        );
        r.summary.insert("delay_after".into(), 12.375);
        r.summary.insert("cpu_seconds".into(), 0.007_812_5);
        let text = r.to_json();
        let back = parse_report(&text).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json(), text, "re-serialization must not drift");
    }

    #[test]
    fn awkward_floats_survive_the_loop() {
        let mut r = RunReport::default();
        r.summary.insert("a".into(), 0.1);
        r.summary.insert("b".into(), 1.0 / 3.0);
        r.summary.insert("c".into(), f64::MAX);
        r.summary.insert("d".into(), 5e-324);
        let text = r.to_json();
        assert_eq!(parse_report(&text).unwrap().to_json(), text);
    }

    #[test]
    fn rejects_malformed_reports() {
        for bad in [
            "[]",
            r#"{"counters":{"x":-1}}"#,
            r#"{"meta":{"x":1}}"#,
            r#"{"spans":{"s":{"total_s":1}}}"#,
        ] {
            assert!(parse_report(bad).is_err(), "accepted {bad:?}");
        }
    }
}
