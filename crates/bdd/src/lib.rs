//! Reduced ordered binary decision diagrams (ROBDDs).
//!
//! The paper's second option for proving a potentially valid clause
//! combination is "carrying out the circuit modification associated with
//! the PVCC, and performing a BDD-based verification of the original
//! circuit versus the modified circuit", noting it is faster than ATPG on
//! small and medium circuits but blows up on large ones. This crate
//! provides exactly that: a shared, hash-consed BDD package with an ITE
//! core and a computed table, circuit-to-BDD construction, and equivalence
//! checking with a node-count budget so callers can fall back to SAT when
//! BDDs explode.
//!
//! # Example
//!
//! ```
//! use bdd::BddManager;
//!
//! let mut mgr = BddManager::new();
//! let a = mgr.var(0)?;
//! let b = mgr.var(1)?;
//! let ab = mgr.and(a, b)?;
//! let ba = mgr.and(b, a)?;
//! // Hash-consing makes equivalence a pointer comparison.
//! assert_eq!(ab, ba);
//! let na = mgr.not(a)?;
//! let f = mgr.or(ab, na)?;
//! assert_eq!(mgr.eval(f, &[true, true]), true);
//! assert_eq!(mgr.eval(f, &[true, false]), false);
//! # Ok::<(), bdd::BddError>(())
//! ```

mod circuit;
mod manager;

pub use circuit::{build_outputs, check_equiv, check_equiv_stats, BddCheckStats, CircuitBddError};
pub use manager::{BddError, BddManager, BddRef};
