use std::collections::HashMap;
use std::fmt;

/// A reference to a BDD node within one [`BddManager`].
///
/// Because nodes are hash-consed, two functions are equal iff their
/// `BddRef`s are equal (within the same manager).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant-false function.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant-true function.
    pub const TRUE: BddRef = BddRef(1);

    /// `true` if this is one of the two terminal nodes.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

impl fmt::Display for BddRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BddRef::FALSE => write!(f, "⊥"),
            BddRef::TRUE => write!(f, "⊤"),
            BddRef(i) => write!(f, "@{i}"),
        }
    }
}

/// Errors from BDD operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BddError {
    /// The node budget was exhausted — the caller should fall back to the
    /// SAT-based prover, as the paper does for large circuits.
    NodeLimit {
        /// The limit that was hit.
        limit: usize,
    },
}

impl fmt::Display for BddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BddError::NodeLimit { limit } => {
                write!(f, "bdd node limit of {limit} nodes exhausted")
            }
        }
    }
}

impl std::error::Error for BddError {}

const TERMINAL_VAR: u32 = u32::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: BddRef,
    hi: BddRef,
}

/// A shared ROBDD manager: unique table, ITE with a computed table, and a
/// configurable node budget.
#[derive(Debug)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: HashMap<Node, BddRef>,
    computed: HashMap<(BddRef, BddRef, BddRef), BddRef>,
    limit: usize,
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl BddManager {
    /// Creates a manager with a generous default node budget (2²³ nodes).
    #[must_use]
    pub fn new() -> Self {
        Self::with_node_limit(1 << 23)
    }

    /// Creates a manager that fails with [`BddError::NodeLimit`] once it
    /// holds `limit` nodes — the mechanism behind the paper's "BDD
    /// representations become too large" fallback.
    #[must_use]
    pub fn with_node_limit(limit: usize) -> Self {
        BddManager {
            nodes: vec![
                Node {
                    var: TERMINAL_VAR,
                    lo: BddRef::FALSE,
                    hi: BddRef::FALSE,
                },
                Node {
                    var: TERMINAL_VAR,
                    lo: BddRef::TRUE,
                    hi: BddRef::TRUE,
                },
            ],
            unique: HashMap::new(),
            computed: HashMap::new(),
            limit,
        }
    }

    /// Number of live nodes (including the two terminals).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Entries in the ITE computed table (memoized triples) — a cache
    /// pressure metric for pipeline accounting.
    #[must_use]
    pub fn ite_cache_entries(&self) -> usize {
        self.computed.len()
    }

    /// The projection function of variable `index` (smaller indices are
    /// closer to the root).
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when even the projection node does not fit
    /// the budget.
    pub fn var(&mut self, index: u32) -> Result<BddRef, BddError> {
        self.mk(index, BddRef::FALSE, BddRef::TRUE)
    }

    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> Result<BddRef, BddError> {
        if lo == hi {
            return Ok(lo);
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return Ok(r);
        }
        if self.nodes.len() >= self.limit {
            return Err(BddError::NodeLimit { limit: self.limit });
        }
        let r = BddRef(self.nodes.len() as u32);
        self.nodes.push(node);
        self.unique.insert(node, r);
        Ok(r)
    }

    fn var_of(&self, r: BddRef) -> u32 {
        self.nodes[r.0 as usize].var
    }

    fn cofactors(&self, r: BddRef, var: u32) -> (BddRef, BddRef) {
        let n = self.nodes[r.0 as usize];
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (r, r)
        }
    }

    /// If-then-else: the universal connective all others are built from.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> Result<BddRef, BddError> {
        // Terminal cases.
        if f == BddRef::TRUE {
            return Ok(g);
        }
        if f == BddRef::FALSE {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == BddRef::TRUE && h == BddRef::FALSE {
            return Ok(f);
        }
        if let Some(&r) = self.computed.get(&(f, g, h)) {
            return Ok(r);
        }
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite(f0, g0, h0)?;
        let hi = self.ite(f1, g1, h1)?;
        let r = self.mk(top, lo, hi)?;
        self.computed.insert((f, g, h), r);
        Ok(r)
    }

    /// Conjunction.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddError> {
        self.ite(f, g, BddRef::FALSE)
    }

    /// Disjunction.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddError> {
        self.ite(f, BddRef::TRUE, g)
    }

    /// Negation.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn not(&mut self, f: BddRef) -> Result<BddRef, BddError> {
        self.ite(f, BddRef::FALSE, BddRef::TRUE)
    }

    /// Exclusive or.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn xor(&mut self, f: BddRef, g: BddRef) -> Result<BddRef, BddError> {
        let ng = self.not(g)?;
        self.ite(f, ng, g)
    }

    /// Evaluates `f` under a variable assignment (`assignment[i]` is the
    /// value of variable `i`).
    #[must_use]
    pub fn eval(&self, f: BddRef, assignment: &[bool]) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let n = self.nodes[cur.0 as usize];
            cur = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
        cur == BddRef::TRUE
    }

    /// The positive or negative cofactor of `f` with respect to variable
    /// `var`: `f` with `var` fixed to `value`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn restrict(&mut self, f: BddRef, var: u32, value: bool) -> Result<BddRef, BddError> {
        if f.is_terminal() {
            return Ok(f);
        }
        let n = self.nodes[f.0 as usize];
        if n.var > var {
            return Ok(f); // var does not appear in f
        }
        if n.var == var {
            return Ok(if value { n.hi } else { n.lo });
        }
        let lo = self.restrict(n.lo, var, value)?;
        let hi = self.restrict(n.hi, var, value)?;
        self.mk(n.var, lo, hi)
    }

    /// Existential quantification: `∃ var. f = f|var=0 + f|var=1`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn exists(&mut self, f: BddRef, var: u32) -> Result<BddRef, BddError> {
        let lo = self.restrict(f, var, false)?;
        let hi = self.restrict(f, var, true)?;
        self.or(lo, hi)
    }

    /// Universal quantification: `∀ var. f = f|var=0 · f|var=1`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn forall(&mut self, f: BddRef, var: u32) -> Result<BddRef, BddError> {
        let lo = self.restrict(f, var, false)?;
        let hi = self.restrict(f, var, true)?;
        self.and(lo, hi)
    }

    /// The set of variable indices `f` actually depends on, ascending.
    #[must_use]
    pub fn support(&self, f: BddRef) -> Vec<u32> {
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        let mut stack = vec![f];
        while let Some(r) = stack.pop() {
            if r.is_terminal() || !seen.insert(r) {
                continue;
            }
            let n = self.nodes[r.0 as usize];
            vars.insert(n.var);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        vars.into_iter().collect()
    }

    /// Functional composition: `f` with variable `var` replaced by the
    /// function `g` — `f[var := g] = ite(g, f|var=1, f|var=0)`.
    ///
    /// # Errors
    ///
    /// [`BddError::NodeLimit`] when the node budget is exhausted.
    pub fn compose(&mut self, f: BddRef, var: u32, g: BddRef) -> Result<BddRef, BddError> {
        let hi = self.restrict(f, var, true)?;
        let lo = self.restrict(f, var, false)?;
        self.ite(g, hi, lo)
    }

    /// Counts satisfying assignments of `f` over `n_vars` variables.
    ///
    /// Counts are exact up to `f64` precision (fine beyond 2⁵⁰), which
    /// matches how the paper's NCP-style statistics tolerate saturation.
    ///
    /// # Panics
    ///
    /// Panics if `f` mentions a variable ≥ `n_vars`.
    #[must_use]
    pub fn sat_count(&self, f: BddRef, n_vars: u32) -> f64 {
        fn count(mgr: &BddManager, f: BddRef, level: u32, n_vars: u32) -> f64 {
            if f == BddRef::FALSE {
                return 0.0;
            }
            if f == BddRef::TRUE {
                return 2f64.powi((n_vars - level) as i32);
            }
            let n = mgr.nodes[f.0 as usize];
            assert!(n.var < n_vars, "node variable out of range");
            // Variables skipped between `level` and this node double the
            // count per skipped variable; the node itself splits in two.
            let skip = 2f64.powi((n.var - level) as i32);
            skip * (count(mgr, n.lo, n.var + 1, n_vars) + count(mgr, n.hi, n.var + 1, n_vars))
        }
        count(self, f, 0, n_vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminals_and_vars() {
        let mut mgr = BddManager::new();
        let a = mgr.var(0).unwrap();
        assert_ne!(a, BddRef::FALSE);
        assert_ne!(a, BddRef::TRUE);
        assert_eq!(mgr.var(0).unwrap(), a, "hash-consed projection");
        assert!(mgr.eval(a, &[true]));
        assert!(!mgr.eval(a, &[false]));
    }

    #[test]
    fn boolean_algebra_identities() {
        let mut mgr = BddManager::new();
        let a = mgr.var(0).unwrap();
        let b = mgr.var(1).unwrap();
        let na = mgr.not(a).unwrap();
        let nna = mgr.not(na).unwrap();
        assert_eq!(nna, a, "double negation");
        let a_and_na = mgr.and(a, na).unwrap();
        assert_eq!(a_and_na, BddRef::FALSE);
        let a_or_na = mgr.or(a, na).unwrap();
        assert_eq!(a_or_na, BddRef::TRUE);
        // De Morgan.
        let ab = mgr.and(a, b).unwrap();
        let n_ab = mgr.not(ab).unwrap();
        let nb = mgr.not(b).unwrap();
        let na_or_nb = mgr.or(na, nb).unwrap();
        assert_eq!(n_ab, na_or_nb);
        // XOR vs. its SOP expansion.
        let x = mgr.xor(a, b).unwrap();
        let t1 = mgr.and(a, nb).unwrap();
        let t2 = mgr.and(na, b).unwrap();
        let sop = mgr.or(t1, t2).unwrap();
        assert_eq!(x, sop);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut mgr = BddManager::new();
        let a = mgr.var(0).unwrap();
        let b = mgr.var(1).unwrap();
        let c = mgr.var(2).unwrap();
        let ab = mgr.and(a, b).unwrap();
        let f = mgr.or(ab, c).unwrap();
        for v in 0u32..8 {
            let assignment = [v & 1 == 1, v >> 1 & 1 == 1, v >> 2 & 1 == 1];
            let expected = (assignment[0] && assignment[1]) || assignment[2];
            assert_eq!(mgr.eval(f, &assignment), expected);
        }
    }

    #[test]
    fn sat_count_examples() {
        let mut mgr = BddManager::new();
        let a = mgr.var(0).unwrap();
        let b = mgr.var(1).unwrap();
        assert_eq!(mgr.sat_count(BddRef::TRUE, 3), 8.0);
        assert_eq!(mgr.sat_count(BddRef::FALSE, 3), 0.0);
        assert_eq!(mgr.sat_count(a, 3), 4.0);
        let ab = mgr.and(a, b).unwrap();
        assert_eq!(mgr.sat_count(ab, 3), 2.0);
        let x = mgr.xor(a, b).unwrap();
        assert_eq!(mgr.sat_count(x, 2), 2.0);
        // Skipped-level handling: var(2) alone out of 3 vars.
        let c = mgr.var(2).unwrap();
        assert_eq!(mgr.sat_count(c, 3), 4.0);
    }

    #[test]
    fn node_limit_enforced() {
        let mut mgr = BddManager::with_node_limit(8);
        // Parity of many variables forces a blow-past of 8 nodes.
        let mut f = mgr.var(0).unwrap();
        let mut failed = false;
        for i in 1..10 {
            let v = match mgr.mk(i, BddRef::FALSE, BddRef::TRUE) {
                Ok(v) => v,
                Err(_) => {
                    failed = true;
                    break;
                }
            };
            match mgr.xor(f, v) {
                Ok(r) => f = r,
                Err(BddError::NodeLimit { limit }) => {
                    assert_eq!(limit, 8);
                    failed = true;
                    break;
                }
            }
        }
        assert!(failed, "node limit never triggered");
    }

    #[test]
    fn restrict_and_quantifiers() {
        let mut mgr = BddManager::new();
        let a = mgr.var(0).unwrap();
        let b = mgr.var(1).unwrap();
        let c = mgr.var(2).unwrap();
        let ab = mgr.and(a, b).unwrap();
        let f = mgr.or(ab, c).unwrap(); // f = ab + c
                                        // f|a=1 = b + c; f|a=0 = c.
        let f_a1 = mgr.restrict(f, 0, true).unwrap();
        let bc = mgr.or(b, c).unwrap();
        assert_eq!(f_a1, bc);
        let f_a0 = mgr.restrict(f, 0, false).unwrap();
        assert_eq!(f_a0, c);
        // ∃a.f = (b+c) + c = b + c; ∀a.f = (b+c)·c = c.
        assert_eq!(mgr.exists(f, 0).unwrap(), bc);
        assert_eq!(mgr.forall(f, 0).unwrap(), c);
        // Restricting an absent variable is the identity.
        assert_eq!(mgr.restrict(f, 7, true).unwrap(), f);
    }

    #[test]
    fn support_and_compose() {
        let mut mgr = BddManager::new();
        let a = mgr.var(0).unwrap();
        let b = mgr.var(1).unwrap();
        let c = mgr.var(2).unwrap();
        let ab = mgr.and(a, b).unwrap();
        let f = mgr.or(ab, c).unwrap();
        assert_eq!(mgr.support(f), vec![0, 1, 2]);
        assert_eq!(mgr.support(BddRef::TRUE), Vec::<u32>::new());
        // f[c := a^b]: ab + (a^b) — support drops c.
        let axb = mgr.xor(a, b).unwrap();
        let g = mgr.compose(f, 2, axb).unwrap();
        assert_eq!(mgr.support(g), vec![0, 1]);
        // ab + a^b = a + b.
        let a_or_b = mgr.or(a, b).unwrap();
        assert_eq!(g, a_or_b);
    }

    #[test]
    fn types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BddManager>();
    }

    #[test]
    fn reduction_no_redundant_nodes() {
        let mut mgr = BddManager::new();
        let a = mgr.var(0).unwrap();
        // ite(a, b, b) must not create a node testing a.
        let b = mgr.var(1).unwrap();
        let r = mgr.ite(a, b, b).unwrap();
        assert_eq!(r, b);
    }
}
