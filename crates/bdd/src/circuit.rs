//! Circuit-to-BDD construction and BDD-based equivalence checking.

use crate::{BddError, BddManager, BddRef};
use netlist::{GateKind, Netlist, NetlistError};
use std::fmt;

/// Errors from circuit-level BDD operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitBddError {
    /// The node budget was exhausted; fall back to SAT.
    Bdd(BddError),
    /// The netlist is cyclic.
    Netlist(NetlistError),
    /// The two netlists have different interfaces.
    InterfaceMismatch,
}

impl fmt::Display for CircuitBddError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitBddError::Bdd(e) => write!(f, "{e}"),
            CircuitBddError::Netlist(e) => write!(f, "{e}"),
            CircuitBddError::InterfaceMismatch => {
                write!(f, "netlists have different input/output counts")
            }
        }
    }
}

impl std::error::Error for CircuitBddError {}

impl From<BddError> for CircuitBddError {
    fn from(e: BddError) -> Self {
        CircuitBddError::Bdd(e)
    }
}

impl From<NetlistError> for CircuitBddError {
    fn from(e: NetlistError) -> Self {
        CircuitBddError::Netlist(e)
    }
}

/// Builds the BDD of every primary output of `nl` in the given manager,
/// with primary input `i` mapped to BDD variable `i`.
///
/// # Errors
///
/// [`CircuitBddError::Bdd`] if the node budget runs out (the caller should
/// fall back to the SAT prover) or [`CircuitBddError::Netlist`] for a
/// cyclic netlist.
pub fn build_outputs(mgr: &mut BddManager, nl: &Netlist) -> Result<Vec<BddRef>, CircuitBddError> {
    let order = nl.topo_order()?;
    let mut node: Vec<BddRef> = vec![BddRef::FALSE; nl.capacity()];
    for (i, &pi) in nl.inputs().iter().enumerate() {
        node[pi.index()] = mgr.var(i as u32)?;
    }
    for &s in &order {
        let kind = nl.kind(s);
        let fanins: Vec<BddRef> = nl.fanins(s).iter().map(|f| node[f.index()]).collect();
        node[s.index()] = match kind {
            GateKind::Input => continue,
            GateKind::Const0 => BddRef::FALSE,
            GateKind::Const1 => BddRef::TRUE,
            GateKind::Buf => fanins[0],
            GateKind::Not => mgr.not(fanins[0])?,
            GateKind::And | GateKind::Nand => {
                let mut acc = BddRef::TRUE;
                for &f in &fanins {
                    acc = mgr.and(acc, f)?;
                }
                if kind == GateKind::Nand {
                    mgr.not(acc)?
                } else {
                    acc
                }
            }
            GateKind::Or | GateKind::Nor => {
                let mut acc = BddRef::FALSE;
                for &f in &fanins {
                    acc = mgr.or(acc, f)?;
                }
                if kind == GateKind::Nor {
                    mgr.not(acc)?
                } else {
                    acc
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                let mut acc = BddRef::FALSE;
                for &f in &fanins {
                    acc = mgr.xor(acc, f)?;
                }
                if kind == GateKind::Xnor {
                    mgr.not(acc)?
                } else {
                    acc
                }
            }
            GateKind::Aoi21 => {
                let ab = mgr.and(fanins[0], fanins[1])?;
                let s = mgr.or(ab, fanins[2])?;
                mgr.not(s)?
            }
            GateKind::Oai21 => {
                let ab = mgr.or(fanins[0], fanins[1])?;
                let s = mgr.and(ab, fanins[2])?;
                mgr.not(s)?
            }
            GateKind::Aoi22 => {
                let ab = mgr.and(fanins[0], fanins[1])?;
                let cd = mgr.and(fanins[2], fanins[3])?;
                let s = mgr.or(ab, cd)?;
                mgr.not(s)?
            }
            GateKind::Oai22 => {
                let ab = mgr.or(fanins[0], fanins[1])?;
                let cd = mgr.or(fanins[2], fanins[3])?;
                let s = mgr.and(ab, cd)?;
                mgr.not(s)?
            }
        };
    }
    Ok(nl
        .outputs()
        .iter()
        .map(|po| node[po.driver().index()])
        .collect())
}

/// BDD-based combinational equivalence (inputs and outputs matched
/// positionally): builds both circuits in one manager and compares the
/// hash-consed output references.
///
/// This is the paper's preferred PVCC check for small and medium circuits;
/// on a node-budget blow-up the caller falls back to
/// [`sat::check_equiv`](https://docs.rs/sat)-style reasoning.
///
/// # Errors
///
/// [`CircuitBddError::InterfaceMismatch`], [`CircuitBddError::Bdd`] on
/// budget exhaustion, or [`CircuitBddError::Netlist`] for cyclic inputs.
///
/// # Example
///
/// ```
/// use netlist::{Netlist, GateKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut n1 = Netlist::new("a");
/// let x = n1.add_input("x");
/// let g = n1.add_gate(GateKind::Not, &[x])?;
/// n1.add_output("y", g);
/// let mut n2 = n1.clone();
/// assert!(bdd::check_equiv(&n1, &n2, 1 << 20)?);
/// # Ok(())
/// # }
/// ```
pub fn check_equiv(a: &Netlist, b: &Netlist, node_limit: usize) -> Result<bool, CircuitBddError> {
    check_equiv_stats(a, b, node_limit).map(|(eq, _)| eq)
}

/// Size statistics of one [`check_equiv_stats`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BddCheckStats {
    /// Live BDD nodes after building both circuits.
    pub nodes: usize,
    /// Entries in the manager's ITE computed table.
    pub ite_cache_entries: usize,
}

/// [`check_equiv`] that also reports the manager's node and ITE-cache
/// counts, for pipeline accounting.
///
/// # Errors
///
/// Same as [`check_equiv`].
pub fn check_equiv_stats(
    a: &Netlist,
    b: &Netlist,
    node_limit: usize,
) -> Result<(bool, BddCheckStats), CircuitBddError> {
    if a.inputs().len() != b.inputs().len() || a.outputs().len() != b.outputs().len() {
        return Err(CircuitBddError::InterfaceMismatch);
    }
    let mut mgr = BddManager::with_node_limit(node_limit);
    let oa = build_outputs(&mut mgr, a)?;
    let ob = build_outputs(&mut mgr, b)?;
    let stats = BddCheckStats {
        nodes: mgr.num_nodes(),
        ite_cache_entries: mgr.ite_cache_entries(),
    };
    Ok((oa == ob, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::SignalId;

    #[test]
    fn build_matches_eval() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.add_gate(GateKind::Aoi21, &[a, b, c]).unwrap();
        let g2 = nl.add_gate(GateKind::Xor, &[g1, a]).unwrap();
        nl.add_output("y", g2);
        let mut mgr = BddManager::new();
        let outs = build_outputs(&mut mgr, &nl).unwrap();
        for v in 0u32..8 {
            let assignment = [v & 1 == 1, v >> 1 & 1 == 1, v >> 2 & 1 == 1];
            let expected = nl.eval_outputs(&assignment).unwrap()[0];
            assert_eq!(mgr.eval(outs[0], &assignment), expected, "vector {v}");
        }
    }

    #[test]
    fn equivalence_positive_and_negative() {
        let mut n1 = Netlist::new("n1");
        let a = n1.add_input("a");
        let b = n1.add_input("b");
        let g = n1.add_gate(GateKind::Nand, &[a, b]).unwrap();
        n1.add_output("y", g);

        let mut n2 = Netlist::new("n2");
        let a = n2.add_input("a");
        let b = n2.add_input("b");
        let na = n2.add_gate(GateKind::Not, &[a]).unwrap();
        let nb = n2.add_gate(GateKind::Not, &[b]).unwrap();
        let g = n2.add_gate(GateKind::Or, &[na, nb]).unwrap();
        n2.add_output("y", g);
        assert!(check_equiv(&n1, &n2, 1 << 16).unwrap());

        let mut n3 = Netlist::new("n3");
        let a = n3.add_input("a");
        let b = n3.add_input("b");
        let g = n3.add_gate(GateKind::And, &[a, b]).unwrap();
        n3.add_output("y", g);
        assert!(!check_equiv(&n1, &n3, 1 << 16).unwrap());
    }

    #[test]
    fn interface_mismatch_detected() {
        let mut n1 = Netlist::new("n1");
        let a = n1.add_input("a");
        n1.add_output("y", a);
        let mut n2 = Netlist::new("n2");
        let a = n2.add_input("a");
        let _b = n2.add_input("b");
        n2.add_output("y", a);
        assert!(matches!(
            check_equiv(&n1, &n2, 1 << 16),
            Err(CircuitBddError::InterfaceMismatch)
        ));
    }

    #[test]
    fn node_limit_fallback_signal() {
        // A multiplier-like XOR/AND mesh forces growth beyond a tiny
        // budget.
        let mut nl = Netlist::new("t");
        let inputs: Vec<SignalId> = (0..16).map(|i| nl.add_input(format!("x{i}"))).collect();
        let mut layer = inputs.clone();
        for _ in 0..4 {
            let mut next = Vec::new();
            for pair in layer.chunks(2) {
                if pair.len() == 2 {
                    let x = nl.add_gate(GateKind::Xor, &[pair[0], pair[1]]).unwrap();
                    let o = nl.add_gate(GateKind::And, &[pair[0], pair[1]]).unwrap();
                    next.push(x);
                    next.push(o);
                } else {
                    next.push(pair[0]);
                }
            }
            layer = next;
        }
        for (i, &s) in layer.iter().enumerate() {
            nl.add_output(format!("y{i}"), s);
        }
        let result = check_equiv(&nl, &nl.clone(), 64);
        assert!(matches!(result, Err(CircuitBddError::Bdd(_))));
        // With a real budget it verifies.
        assert!(check_equiv(&nl, &nl.clone(), 1 << 20).unwrap());
    }

    #[test]
    fn constants_build() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let one = nl.const1();
        let g = nl.add_gate(GateKind::And, &[a, one]).unwrap();
        nl.add_output("y", g);
        let mut mgr = BddManager::new();
        let outs = build_outputs(&mut mgr, &nl).unwrap();
        assert_eq!(outs[0], mgr.var(0).unwrap());
    }
}
