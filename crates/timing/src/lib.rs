//! Static timing analysis on (mapped) combinational netlists.
//!
//! The paper's optimizer works on the *topological* critical path of a
//! mapped netlist, using the per-pin block delays of the bound library
//! cells. This crate computes:
//!
//! * arrival times, required times and slack per signal, held in a
//!   persistent [`TimingGraph`] that follows netlist edits incrementally
//!   via the `netlist` crate's [`EditDelta`](netlist::EditDelta) journal;
//! * the circuit delay (the "delay" column of Tables 1 and 2);
//! * the set of *critical gates* (slack ≈ 0), which is where the paper
//!   restricts its `a`-signals;
//! * **NCP**, the number of critical paths through each signal — the
//!   primary ranking key for substitutions (Section 5);
//! * an explicit worst path for reporting.
//!
//! # Example
//!
//! ```
//! use netlist::{Netlist, GateKind};
//! use timing::{TimingGraph, UnitDelay};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nl = Netlist::new("t");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let g1 = nl.add_gate(GateKind::And, &[a, b])?;
//! let g2 = nl.add_gate(GateKind::Not, &[g1])?;
//! nl.add_output("y", g2);
//! let mut tg = TimingGraph::from_scratch(&nl, &UnitDelay)?;
//! assert_eq!(tg.circuit_delay(), 2.0);
//! assert!(tg.is_critical(g1));
//!
//! // Edits recorded in the netlist journal update the graph in place,
//! // re-propagating only through the affected cones.
//! nl.record_edits();
//! let g3 = nl.add_gate(GateKind::Buf, &[g2])?;
//! nl.add_output("z", g3);
//! let delta = nl.take_delta();
//! tg.update(&nl, &UnitDelay, &delta);
//! assert_eq!(tg.circuit_delay(), 3.0);
//! # Ok(())
//! # }
//! ```

mod graph;
mod model;
mod ncp;
mod paths;

pub use graph::TimingGraph;
pub use model::{DelayModel, LibDelay, LoadDelay, UnitDelay};
pub use ncp::CriticalPaths;
pub use paths::{worst_paths, TimingPath};
