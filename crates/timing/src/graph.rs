//! The persistent, edit-driven timing engine.
//!
//! [`TimingGraph`] owns per-signal arrival times, path tails (the longest
//! delay from a signal to any primary output) and cached pin delays. It is
//! built once with [`TimingGraph::from_scratch`] and then kept in sync
//! with netlist edits by [`TimingGraph::update`], which consumes the
//! [`EditDelta`] journal of `netlist` and re-propagates timing only
//! through the cones reachable from the touched signals:
//!
//! * **levels** are repaired first with a chaotic worklist (the netlist is
//!   a DAG, so the iteration reaches the unique fixpoint);
//! * **arrivals** flow forward through the transitive fanout of dirty
//!   signals, in level order, stopping as soon as a recomputed arrival
//!   moves by no more than the propagation cutoff;
//! * **tails** flow backward through the transitive fanin of signals whose
//!   fanout structure or pin delays changed, again with early cutoff.
//!
//! Required times are *derived*: `required(s) = po_req − tail(s)`. Storing
//! tails instead of absolute required times is what makes the engine
//! incremental — when the circuit delay moves (every accepted delay
//! rewrite), every required time in the circuit shifts by the same
//! amount, and the tail representation absorbs that global shift in O(1)
//! instead of re-propagating the whole backward pass.

use crate::DelayModel;
use netlist::{EditDelta, Fanout, Netlist, NetlistError, SignalId, SignalSet};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Tolerance for "critical" comparisons, relative to the circuit delay.
const REL_EPS: f64 = 1e-9;

/// A persistent static-timing view of one evolving netlist.
///
/// Arrival times propagate forward from primary inputs (arrival 0 unless
/// constrained); required times propagate backward from primary outputs,
/// whose required time is the circuit delay unless constrained. A signal
/// is *critical* when its slack is (numerically) zero — critical gates
/// are the only `a`-signal candidates of the paper's delay-reduction
/// phase.
///
/// # Example
///
/// ```
/// use netlist::{GateKind, Netlist};
/// use timing::{TimingGraph, UnitDelay};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let g = nl.add_gate(GateKind::Not, &[a])?;
/// nl.add_output("y", g);
/// let mut tg = TimingGraph::from_scratch(&nl, &UnitDelay)?;
/// assert_eq!(tg.circuit_delay(), 1.0);
///
/// // Edit under a journal, then update incrementally.
/// nl.record_edits();
/// let h = nl.add_gate(GateKind::Buf, &[g])?;
/// nl.add_output("z", h);
/// let delta = nl.take_delta();
/// tg.update(&nl, &UnitDelay, &delta);
/// assert_eq!(tg.circuit_delay(), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct TimingGraph {
    arrival: Vec<f64>,
    /// Longest delay from the signal to any primary output;
    /// `NEG_INFINITY` for signals from which no output is reachable.
    tail: Vec<f64>,
    /// Topological level: 0 for sources, `1 + max(fanin levels)` for
    /// gates. Orders the update worklists.
    level: Vec<u32>,
    /// Cached per-pin block delays of every gate (empty for sources and
    /// dead slots). Queries never consult the delay model.
    delays: Vec<Vec<f64>>,
    /// Deduplicated primary-output drivers, cached so slack queries need
    /// no netlist.
    po_drivers: Vec<SignalId>,
    circuit_delay: f64,
    eps: f64,
    /// Effective required time at every primary output.
    po_req: f64,
    explicit_po_req: Option<f64>,
    /// Per-primary-output required times (indexed by PO position) for
    /// region-constrained analysis; `None` keeps the scalar behaviour.
    /// Takes precedence over `explicit_po_req`.
    po_required_times: Option<Vec<f64>>,
    /// Backward-pass seed per PO index (`po_req − required(po_j)`).
    /// Empty without per-output constraints, meaning "seed 0 everywhere".
    po_seed: Vec<f64>,
    /// Cached effective required time per `po_drivers` entry; empty
    /// without per-output constraints (then every endpoint uses
    /// `po_req`).
    endpoint_req: Vec<f64>,
    input_arrivals: Option<Vec<f64>>,
    /// Propagation cutoff: a recomputed value that moves by no more than
    /// this stops the worklist. 0.0 (the default) reproduces a full
    /// analysis bit for bit.
    cutoff: f64,
}

impl TimingGraph {
    /// Builds the graph with a full forward/backward analysis under the
    /// default boundary conditions: inputs arrive at 0, outputs are
    /// required at the circuit delay (so the worst paths have zero
    /// slack).
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if `nl` is not a DAG.
    pub fn from_scratch<M: DelayModel>(
        nl: &Netlist,
        model: &M,
    ) -> Result<TimingGraph, NetlistError> {
        Self::from_scratch_constrained(nl, model, None, None)
    }

    /// Builds the graph under explicit boundary constraints.
    ///
    /// `input_arrivals[i]` is the arrival time of primary input `i`
    /// (default 0). `po_required` is the required time at every primary
    /// output; when `None`, the circuit delay is used, making the worst
    /// paths exactly critical. With an explicit requirement, slacks can
    /// be genuinely negative (the constraint is violated) or uniformly
    /// positive (timing met with margin) — and
    /// [`is_critical`](Self::is_critical) then reflects the *constraint*,
    /// not the topological worst path. Both constraints persist across
    /// [`update`](Self::update) calls.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if `nl` is not a DAG.
    ///
    /// # Panics
    ///
    /// Panics if `input_arrivals` is given with the wrong length.
    pub fn from_scratch_constrained<M: DelayModel>(
        nl: &Netlist,
        model: &M,
        input_arrivals: Option<&[f64]>,
        po_required: Option<f64>,
    ) -> Result<TimingGraph, NetlistError> {
        if let Some(ia) = input_arrivals {
            assert_eq!(
                ia.len(),
                nl.inputs().len(),
                "one arrival time per primary input"
            );
        }
        telemetry::counter_add("sta.full_recomputes", 1);
        let mut tg = TimingGraph {
            arrival: Vec::new(),
            tail: Vec::new(),
            level: Vec::new(),
            delays: Vec::new(),
            po_drivers: Vec::new(),
            circuit_delay: 0.0,
            eps: REL_EPS,
            po_req: 0.0,
            explicit_po_req: po_required,
            po_required_times: None,
            po_seed: Vec::new(),
            endpoint_req: Vec::new(),
            input_arrivals: input_arrivals.map(<[f64]>::to_vec),
            cutoff: 0.0,
        };
        tg.analyze_full(nl, model)?;
        Ok(tg)
    }

    /// Builds the graph under *per-output* boundary constraints — the
    /// timing view of one extracted partition region. `input_arrivals[i]`
    /// is the arrival time of primary input `i` (the parent arrival of
    /// the frozen boundary signal feeding it); `po_required[j]` is the
    /// required time of primary output `j` (the parent required time of
    /// the frozen boundary signal it drives, so downstream path tails
    /// outside the region keep shaping criticality inside it).
    ///
    /// The per-output requirements are folded into the shared backward
    /// pass by seeding output `j`'s tail with `max_k(po_required[k]) −
    /// po_required[j]`, so `required(s)` is `min_j(po_required[j] −
    /// delay(s → j))` and incremental [`update`](Self::update)s keep
    /// working unchanged. Constraints persist across updates.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if `nl` is not a DAG.
    ///
    /// # Panics
    ///
    /// Panics if a constraint slice has the wrong length or contains a
    /// non-finite value.
    pub fn from_scratch_region<M: DelayModel>(
        nl: &Netlist,
        model: &M,
        input_arrivals: Option<&[f64]>,
        po_required: &[f64],
    ) -> Result<TimingGraph, NetlistError> {
        if let Some(ia) = input_arrivals {
            assert_eq!(
                ia.len(),
                nl.inputs().len(),
                "one arrival time per primary input"
            );
        }
        assert_eq!(
            po_required.len(),
            nl.outputs().len(),
            "one required time per primary output"
        );
        assert!(
            po_required.iter().all(|r| r.is_finite()),
            "required times must be finite"
        );
        telemetry::counter_add("sta.full_recomputes", 1);
        let mut tg = TimingGraph {
            arrival: Vec::new(),
            tail: Vec::new(),
            level: Vec::new(),
            delays: Vec::new(),
            po_drivers: Vec::new(),
            circuit_delay: 0.0,
            eps: REL_EPS,
            po_req: 0.0,
            explicit_po_req: None,
            po_required_times: Some(po_required.to_vec()),
            po_seed: Vec::new(),
            endpoint_req: Vec::new(),
            input_arrivals: input_arrivals.map(<[f64]>::to_vec),
            cutoff: 0.0,
        };
        tg.analyze_full(nl, model)?;
        Ok(tg)
    }

    /// Sets the propagation cutoff used by [`update`](Self::update):
    /// recomputed arrivals/tails that move by no more than `cutoff` stop
    /// the worklist early. The default of 0.0 makes incremental updates
    /// agree with a from-scratch analysis exactly; a small positive
    /// cutoff trades bounded staleness (at most `depth × cutoff`) for
    /// fewer propagations.
    ///
    /// # Panics
    ///
    /// Panics if `cutoff` is negative or not finite.
    #[must_use]
    pub fn with_cutoff(mut self, cutoff: f64) -> Self {
        assert!(
            cutoff.is_finite() && cutoff >= 0.0,
            "cutoff must be non-negative"
        );
        self.cutoff = cutoff;
        self
    }

    /// The active propagation cutoff.
    #[must_use]
    pub fn cutoff(&self) -> f64 {
        self.cutoff
    }

    /// Discards the incremental state and re-analyzes from scratch,
    /// keeping the boundary constraints and cutoff. The forced-rebuild
    /// escape hatch for callers that edited the netlist without a
    /// journal.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if `nl` is not a DAG.
    pub fn rebuild<M: DelayModel>(&mut self, nl: &Netlist, model: &M) -> Result<(), NetlistError> {
        telemetry::counter_add("sta.full_recomputes", 1);
        self.analyze_full(nl, model)
    }

    /// The full forward/backward analysis shared by
    /// [`from_scratch`](Self::from_scratch), [`rebuild`](Self::rebuild)
    /// and the debug cross-check.
    fn analyze_full<M: DelayModel>(&mut self, nl: &Netlist, model: &M) -> Result<(), NetlistError> {
        let order = nl.topo_order()?;
        let cap = nl.capacity();
        self.arrival = vec![0.0; cap];
        self.tail = vec![f64::NEG_INFINITY; cap];
        self.level = vec![0; cap];
        self.delays = vec![Vec::new(); cap];
        if let Some(ia) = &self.input_arrivals {
            for (i, &pi) in nl.inputs().iter().enumerate() {
                self.arrival[pi.index()] = ia.get(i).copied().unwrap_or(0.0);
            }
        }
        for &s in &order {
            if nl.kind(s).is_source() {
                continue;
            }
            let fanins = nl.fanins(s);
            let delays: Vec<f64> = (0..fanins.len())
                .map(|pin| model.pin_delay(nl, s, pin))
                .collect();
            let mut at: f64 = 0.0;
            let mut lvl: u32 = 0;
            for (pin, &f) in fanins.iter().enumerate() {
                at = at.max(self.arrival[f.index()] + delays[pin]);
                lvl = lvl.max(self.level[f.index()] + 1);
            }
            self.arrival[s.index()] = at;
            self.level[s.index()] = lvl;
            self.delays[s.index()] = delays;
        }
        // Endpoints (and the per-output tail seeds) derive from arrivals
        // only, so they must be fresh before the backward pass reads
        // them through `tail_of`.
        self.refresh_endpoints(nl);
        for &s in order.iter().rev() {
            self.tail[s.index()] = self.tail_of(nl, s);
        }
        Ok(())
    }

    /// Recomputes one signal's tail from its fanouts and the cached
    /// delays.
    fn tail_of(&self, nl: &Netlist, s: SignalId) -> f64 {
        let mut t = f64::NEG_INFINITY;
        for fo in nl.fanouts(s) {
            match *fo {
                Fanout::Po(j) => t = t.max(self.po_seed_of(j)),
                Fanout::Gate { cell, pin } => {
                    t = t.max(self.tail[cell.index()] + self.delays[cell.index()][pin as usize]);
                }
            }
        }
        t
    }

    /// The backward-pass tail seed of primary output `j`: 0 without
    /// per-output constraints, `po_req − required(po_j)` with them.
    fn po_seed_of(&self, j: u32) -> f64 {
        if self.po_seed.is_empty() {
            0.0
        } else {
            self.po_seed.get(j as usize).copied().unwrap_or(0.0)
        }
    }

    /// Re-derives the cached endpoint set, the circuit delay, eps and the
    /// effective output required time from the current arrivals.
    fn refresh_endpoints(&mut self, nl: &Netlist) {
        self.po_drivers.clear();
        let mut seen = SignalSet::with_capacity(nl.capacity());
        for po in nl.outputs() {
            if seen.insert(po.driver()) {
                self.po_drivers.push(po.driver());
            }
        }
        self.circuit_delay = self
            .po_drivers
            .iter()
            .map(|d| self.arrival[d.index()])
            .fold(0.0_f64, f64::max);
        self.eps = self.circuit_delay.abs().max(1.0) * REL_EPS;
        match &self.po_required_times {
            Some(req) => {
                // Base required = the latest per-output requirement;
                // seeding PO j's tail with `base − req[j]` folds the
                // per-output offsets into the one shared backward pass.
                let base = req.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                self.po_req = base;
                self.po_seed = req.iter().map(|&r| base - r).collect();
                self.endpoint_req = self
                    .po_drivers
                    .iter()
                    .map(|&d| {
                        nl.outputs()
                            .iter()
                            .enumerate()
                            .filter(|(_, po)| po.driver() == d)
                            .map(|(j, _)| req.get(j).copied().unwrap_or(base))
                            .fold(f64::INFINITY, f64::min)
                    })
                    .collect();
            }
            None => {
                self.po_req = self.explicit_po_req.unwrap_or(self.circuit_delay);
                self.po_seed.clear();
                self.endpoint_req.clear();
            }
        }
    }

    /// Applies a batch of recorded edits, re-propagating arrivals through
    /// the transitive fanout of the touched signals and tails through the
    /// transitive fanin of signals whose fanout structure or delays
    /// moved. `model` must be the same delay model the graph was built
    /// with.
    ///
    /// The edits must have left the netlist acyclic — every `netlist`
    /// editing primitive guarantees this, which is why no cycle check (and
    /// no error path) is needed here.
    pub fn update<M: DelayModel>(&mut self, nl: &Netlist, model: &M, delta: &EditDelta) {
        let cap = nl.capacity();
        if self.arrival.len() < cap {
            self.arrival.resize(cap, 0.0);
            self.tail.resize(cap, f64::NEG_INFINITY);
            self.level.resize(cap, 0);
            self.delays.resize(cap, Vec::new());
        }
        let dirty: Vec<SignalId> = delta
            .signals()
            .iter()
            .copied()
            .filter(|&s| {
                if nl.is_live(s) {
                    true
                } else {
                    // Deleted slot: neutralize it so later reads (and a
                    // possible recycled reallocation) start clean.
                    self.arrival[s.index()] = 0.0;
                    self.tail[s.index()] = f64::NEG_INFINITY;
                    self.level[s.index()] = 0;
                    self.delays[s.index()].clear();
                    false
                }
            })
            .collect();
        telemetry::counter_add("sta.incremental_updates", 1);
        telemetry::counter_add("sta.dirty_signals", dirty.len() as u64);

        // Refresh cached pin delays of dirty gates. A delay change must
        // force the backward pass into the gate's fanins even when the
        // gate's own tail is unchanged.
        let mut delay_changed = SignalSet::with_capacity(cap);
        for &s in &dirty {
            if nl.kind(s).is_source() {
                self.delays[s.index()].clear();
                continue;
            }
            let fresh: Vec<f64> = (0..nl.fanins(s).len())
                .map(|pin| model.pin_delay(nl, s, pin))
                .collect();
            if fresh != self.delays[s.index()] {
                self.delays[s.index()] = fresh;
                delay_changed.insert(s);
            }
        }

        self.repair_levels(nl, &dirty);
        self.propagate_arrivals(nl, &dirty);
        self.refresh_endpoints(nl);
        self.propagate_tails(nl, &dirty, &delay_changed);

        #[cfg(debug_assertions)]
        self.debug_cross_check(nl, model);
    }

    /// Chaotic-iteration level repair seeded at the dirty signals. The
    /// netlist is a DAG and levels were globally correct before the
    /// edits, so the worklist converges to the unique fixpoint.
    fn repair_levels(&mut self, nl: &Netlist, dirty: &[SignalId]) {
        let mut queue: VecDeque<SignalId> = VecDeque::new();
        let mut queued = SignalSet::with_capacity(nl.capacity());
        for &s in dirty {
            if queued.insert(s) {
                queue.push_back(s);
            }
        }
        while let Some(s) = queue.pop_front() {
            queued.remove(s);
            let lvl = if nl.kind(s).is_source() {
                0
            } else {
                nl.fanins(s)
                    .iter()
                    .map(|f| self.level[f.index()] + 1)
                    .max()
                    .unwrap_or(0)
            };
            if lvl == self.level[s.index()] {
                continue;
            }
            self.level[s.index()] = lvl;
            for fo in nl.fanouts(s) {
                if let Fanout::Gate { cell, .. } = *fo {
                    if queued.insert(cell) {
                        queue.push_back(cell);
                    }
                }
            }
        }
    }

    /// Forward pass: levelized worklist over the transitive fanout of the
    /// dirty signals; propagation stops where arrivals move by no more
    /// than the cutoff.
    fn propagate_arrivals(&mut self, nl: &Netlist, dirty: &[SignalId]) {
        let mut heap: BinaryHeap<Reverse<(u32, usize)>> = BinaryHeap::new();
        let mut queued = SignalSet::with_capacity(nl.capacity());
        for &s in dirty {
            if queued.insert(s) {
                heap.push(Reverse((self.level[s.index()], s.index())));
            }
        }
        // Lazily resolve constrained input arrivals (the common case has
        // none, so don't build the position map up front).
        let pi_pos = |s: SignalId| nl.inputs().iter().position(|&pi| pi == s);
        while let Some(Reverse((_, idx))) = heap.pop() {
            let s = SignalId::from_index(idx);
            let at = if nl.kind(s).is_source() {
                match &self.input_arrivals {
                    Some(ia) if nl.kind(s) == netlist::GateKind::Input => {
                        pi_pos(s).and_then(|i| ia.get(i)).copied().unwrap_or(0.0)
                    }
                    _ => 0.0,
                }
            } else {
                let delays = &self.delays[idx];
                nl.fanins(s)
                    .iter()
                    .enumerate()
                    .map(|(pin, f)| self.arrival[f.index()] + delays[pin])
                    .fold(0.0_f64, f64::max)
            };
            let old = self.arrival[idx];
            if old == at || (at - old).abs() <= self.cutoff {
                // Still store the exact value (the cutoff bounds what we
                // refuse to *propagate*, not what we remember).
                self.arrival[idx] = at;
                continue;
            }
            self.arrival[idx] = at;
            for fo in nl.fanouts(s) {
                if let Fanout::Gate { cell, .. } = *fo {
                    if queued.insert(cell) {
                        heap.push(Reverse((self.level[cell.index()], cell.index())));
                    }
                }
            }
        }
    }

    /// Backward pass: levelized worklist (deepest first) over the
    /// transitive fanin of signals whose fanout structure or pin delays
    /// changed.
    fn propagate_tails(&mut self, nl: &Netlist, dirty: &[SignalId], delay_changed: &SignalSet) {
        let mut heap: BinaryHeap<(u32, usize)> = BinaryHeap::new();
        let mut queued = SignalSet::with_capacity(nl.capacity());
        let mut seed = |s: SignalId, heap: &mut BinaryHeap<(u32, usize)>| {
            if queued.insert(s) {
                heap.push((self.level[s.index()], s.index()));
            }
        };
        for &s in dirty {
            seed(s, &mut heap);
            // A gate whose pin delays moved shifts the tail of each fanin
            // even when its own tail is unchanged.
            if delay_changed.contains(s) {
                for &f in nl.fanins(s) {
                    seed(f, &mut heap);
                }
            }
        }
        while let Some((_, idx)) = heap.pop() {
            let s = SignalId::from_index(idx);
            let t = self.tail_of(nl, s);
            let old = self.tail[idx];
            if old == t || (t - old).abs() <= self.cutoff {
                self.tail[idx] = t;
                continue;
            }
            self.tail[idx] = t;
            if !nl.kind(s).is_source() {
                for &f in nl.fanins(s) {
                    if queued.insert(f) {
                        heap.push((self.level[f.index()], f.index()));
                    }
                }
            }
        }
    }

    /// In debug builds every exact-mode update is cross-checked against a
    /// from-scratch analysis, so any divergence of the incremental engine
    /// fails loudly in tests instead of silently mistiming rewrites.
    #[cfg(debug_assertions)]
    fn debug_cross_check<M: DelayModel>(&self, nl: &Netlist, model: &M) {
        if self.cutoff != 0.0 {
            return; // approximate mode is allowed to drift by design
        }
        let mut full = self.clone();
        full.analyze_full(nl, model)
            .expect("netlist edits keep the DAG acyclic");
        for s in nl.signals() {
            let i = s.index();
            assert!(
                self.arrival[i] == full.arrival[i] && self.tail[i] == full.tail[i],
                "incremental drift at {s}: arrival {} vs {}, tail {} vs {}",
                self.arrival[i],
                full.arrival[i],
                self.tail[i],
                full.tail[i],
            );
        }
    }

    /// Maximum absolute deviation of arrivals and required times from a
    /// fresh from-scratch analysis — 0.0 when the incremental state is
    /// exact. Exposed for tests and debugging; does not touch telemetry.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if `nl` is not a DAG.
    pub fn deviation_from_scratch<M: DelayModel>(
        &self,
        nl: &Netlist,
        model: &M,
    ) -> Result<f64, NetlistError> {
        let mut full = self.clone();
        full.analyze_full(nl, model)?;
        let mut worst = 0.0_f64;
        for s in nl.signals() {
            let i = s.index();
            worst = worst.max((self.arrival[i] - full.arrival[i]).abs());
            let (a, b) = (self.tail[i], full.tail[i]);
            if a != b {
                worst = worst.max((a - b).abs());
            }
        }
        Ok(worst)
    }

    /// The worst (smallest) slack over the cached primary-output
    /// endpoints — negative iff a constraint is violated, `+inf` for
    /// netlists without outputs.
    #[must_use]
    pub fn worst_slack(&self) -> f64 {
        if self.endpoint_req.is_empty() {
            self.po_drivers
                .iter()
                .map(|d| self.po_req - self.arrival[d.index()])
                .fold(f64::INFINITY, f64::min)
        } else {
            self.po_drivers
                .iter()
                .zip(&self.endpoint_req)
                .map(|(d, &r)| r - self.arrival[d.index()])
                .fold(f64::INFINITY, f64::min)
        }
    }

    /// Arrival time of a signal.
    #[must_use]
    pub fn arrival(&self, s: SignalId) -> f64 {
        self.arrival[s.index()]
    }

    /// Required time of a signal (`+inf` for signals driving nothing).
    #[must_use]
    pub fn required(&self, s: SignalId) -> f64 {
        self.po_req - self.tail[s.index()]
    }

    /// Slack of a signal: `required - arrival`.
    #[must_use]
    pub fn slack(&self, s: SignalId) -> f64 {
        self.required(s) - self.arrival[s.index()]
    }

    /// The topological circuit delay: the latest primary-output arrival.
    #[must_use]
    pub fn circuit_delay(&self) -> f64 {
        self.circuit_delay
    }

    /// The comparison tolerance used by the criticality tests.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Cached block delay from input `pin` of `gate` to its output.
    #[must_use]
    pub fn pin_delay(&self, gate: SignalId, pin: usize) -> f64 {
        self.delays[gate.index()][pin]
    }

    /// Returns `true` if `s` lies on a topological critical path.
    #[must_use]
    pub fn is_critical(&self, s: SignalId) -> bool {
        self.slack(s) <= self.eps
    }

    /// All critical signals of the netlist, in id order (inputs included).
    #[must_use]
    pub fn critical_signals(&self, nl: &Netlist) -> Vec<SignalId> {
        nl.signals().filter(|&s| self.is_critical(s)).collect()
    }

    /// All critical *gates* (the paper's critical-gate set).
    #[must_use]
    pub fn critical_gates(&self, nl: &Netlist) -> Vec<SignalId> {
        nl.gates().filter(|&s| self.is_critical(s)).collect()
    }

    /// Returns `true` if the fanin edge (pin `pin` of `gate`) is a
    /// critical edge: both endpoints critical and the edge delay tight.
    #[must_use]
    pub fn is_critical_edge(&self, nl: &Netlist, gate: SignalId, pin: usize) -> bool {
        let src = nl.fanins(gate)[pin];
        self.is_critical(src)
            && self.is_critical(gate)
            && (self.arrival(src) + self.pin_delay(gate, pin) - self.arrival(gate)).abs()
                <= self.eps
    }

    /// Extracts one worst (topologically longest) path as a signal chain
    /// from a primary input to a primary output driver.
    ///
    /// Returns an empty vector for netlists without outputs.
    #[must_use]
    pub fn worst_path(&self, nl: &Netlist) -> Vec<SignalId> {
        let Some(&end) = self
            .po_drivers
            .iter()
            .max_by(|&&a, &&b| self.arrival(a).total_cmp(&self.arrival(b)))
        else {
            return Vec::new();
        };
        let mut path = vec![end];
        let mut cur = end;
        while !nl.kind(cur).is_source() {
            let (pin, _) = nl
                .fanins(cur)
                .iter()
                .enumerate()
                .max_by(|(pa, &a), (pb, &b)| {
                    (self.arrival(a) + self.pin_delay(cur, *pa))
                        .total_cmp(&(self.arrival(b) + self.pin_delay(cur, *pb)))
                })
                .expect("gates have fanins");
            cur = nl.fanins(cur)[pin];
            path.push(cur);
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnitDelay;
    use netlist::{Branch, GateKind};

    /// Chain a -> g1 -> g2 -> y, plus a short side branch b -> g2.
    fn chain() -> (Netlist, [SignalId; 4]) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let g2 = nl.add_gate(GateKind::And, &[g1, b]).unwrap();
        nl.add_output("y", g2);
        (nl, [a, b, g1, g2])
    }

    #[test]
    fn arrivals_and_delay() {
        let (nl, [a, b, g1, g2]) = chain();
        let tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        assert_eq!(tg.arrival(a), 0.0);
        assert_eq!(tg.arrival(g1), 1.0);
        assert_eq!(tg.arrival(g2), 2.0);
        assert_eq!(tg.circuit_delay(), 2.0);
        assert_eq!(tg.required(g2), 2.0);
        assert_eq!(tg.required(g1), 1.0);
        assert_eq!(tg.required(b), 1.0);
        assert_eq!(tg.slack(b), 1.0);
        assert!(!tg.is_critical(b));
        for s in [a, g1, g2] {
            assert!(tg.is_critical(s), "{s} should be critical");
        }
    }

    #[test]
    fn critical_edges() {
        let (nl, [_, _, _, g2]) = chain();
        let tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        assert!(tg.is_critical_edge(&nl, g2, 0)); // from g1
        assert!(!tg.is_critical_edge(&nl, g2, 1)); // from b
    }

    #[test]
    fn worst_path_walks_the_chain() {
        let (nl, [a, _, g1, g2]) = chain();
        let tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        assert_eq!(tg.worst_path(&nl), vec![a, g1, g2]);
    }

    #[test]
    fn unused_signal_has_infinite_required() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let _dangling = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let g = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        nl.add_output("y", g);
        let tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        assert!(tg.required(_dangling).is_infinite());
        assert!(!tg.is_critical(_dangling));
    }

    #[test]
    fn mapped_delays_respected() {
        use crate::LibDelay;
        use library::{standard_library, MapGoal, Mapper};
        let lib = standard_library();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        nl.add_output("y", g);
        let mapped = Mapper::new(&lib).goal(MapGoal::Area).map(&nl).unwrap();
        let tg = TimingGraph::from_scratch(&mapped, &LibDelay::new(&lib)).unwrap();
        // One xor2 cell with 2.0 ns pins.
        assert!((tg.circuit_delay() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_netlist() {
        let nl = Netlist::new("t");
        let tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        assert_eq!(tg.circuit_delay(), 0.0);
        assert!(tg.worst_path(&nl).is_empty());
        assert_eq!(tg.worst_slack(), f64::INFINITY);
    }

    #[test]
    fn constrained_analysis_shifts_slack() {
        let (nl, [a, b, g1, g2]) = chain();
        // Tight requirement: everything is late.
        let tg = TimingGraph::from_scratch_constrained(&nl, &UnitDelay, None, Some(1.0)).unwrap();
        assert!(tg.worst_slack() < 0.0);
        assert!(tg.slack(g1) < 0.0);
        // Loose requirement: nothing is critical.
        let tg = TimingGraph::from_scratch_constrained(&nl, &UnitDelay, None, Some(10.0)).unwrap();
        assert!(tg.worst_slack() > 0.0);
        assert!(!tg.is_critical(g2));
        // Input arrival shifts downstream arrivals.
        let tg = TimingGraph::from_scratch_constrained(&nl, &UnitDelay, Some(&[5.0, 0.0]), None)
            .unwrap();
        assert_eq!(tg.arrival(a), 5.0);
        assert_eq!(tg.arrival(g1), 6.0);
        assert_eq!(tg.circuit_delay(), 7.0);
        // b's path is now very uncritical.
        assert!(tg.slack(b) > 5.0);
    }

    #[test]
    fn default_analysis_equals_unconstrained() {
        let (nl, _) = chain();
        let a = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        let b = TimingGraph::from_scratch_constrained(&nl, &UnitDelay, None, None).unwrap();
        for s in nl.signals() {
            assert_eq!(a.arrival(s), b.arrival(s));
            assert_eq!(a.required(s), b.required(s));
        }
    }

    #[test]
    fn worst_path_delays_telescope() {
        // Along the worst path, each step's arrival difference equals the
        // pin delay — on a mapped netlist with heterogeneous cells.
        use crate::LibDelay;
        use library::{standard_library, MapGoal, Mapper};
        let lib = standard_library();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::Aoi21, &[g1, c, a]).unwrap();
        let g3 = nl.add_gate(GateKind::Nand, &[g2, b]).unwrap();
        nl.add_output("y", g3);
        let mapped = Mapper::new(&lib).goal(MapGoal::Delay).map(&nl).unwrap();
        let model = LibDelay::new(&lib);
        let tg = TimingGraph::from_scratch(&mapped, &model).unwrap();
        let path = tg.worst_path(&mapped);
        assert!(path.len() >= 2);
        for w in path.windows(2) {
            let (src, dst) = (w[0], w[1]);
            let pin = mapped
                .fanins(dst)
                .iter()
                .position(|&f| f == src)
                .expect("consecutive path nodes are connected");
            let step = tg.pin_delay(dst, pin);
            assert!(
                (tg.arrival(src) + step - tg.arrival(dst)).abs() < 1e-9,
                "non-tight worst-path step"
            );
        }
        assert!((tg.arrival(*path.last().unwrap()) - tg.circuit_delay()).abs() < 1e-9);
    }

    #[test]
    fn slack_is_never_negative_without_constraints() {
        // With required = circuit delay at every PO, min slack is 0.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::Xor, &[g1, a]).unwrap();
        nl.add_output("y", g2);
        nl.add_output("z", g1);
        let tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        for s in nl.signals() {
            assert!(tg.slack(s) >= -tg.eps(), "negative slack at {s}");
        }
        assert!(tg.worst_slack().abs() <= tg.eps());
    }

    // ------------------------------------------------------------------
    // Incremental-update behavior.
    // ------------------------------------------------------------------

    #[test]
    fn incremental_extension_matches_scratch() {
        let (mut nl, [_, b, _, g2]) = chain();
        let mut tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        nl.record_edits();
        let g3 = nl.add_gate(GateKind::Or, &[g2, b]).unwrap();
        nl.add_output("z", g3);
        let delta = nl.take_delta();
        tg.update(&nl, &UnitDelay, &delta);
        assert_eq!(tg.circuit_delay(), 3.0);
        assert_eq!(tg.arrival(g3), 3.0);
        assert_eq!(tg.deviation_from_scratch(&nl, &UnitDelay).unwrap(), 0.0);
    }

    #[test]
    fn required_times_shift_globally_when_delay_drops() {
        // Rewiring the critical path shorter shifts *every* required time;
        // the tail representation must absorb that without touching the
        // side branch.
        let (mut nl, [a, b, _g1, g2]) = chain();
        let mut tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        assert_eq!(tg.required(b), 1.0);
        nl.record_edits();
        nl.rewire_branch(Branch { cell: g2, pin: 0 }, a).unwrap();
        nl.prune_dangling();
        let delta = nl.take_delta();
        tg.update(&nl, &UnitDelay, &delta);
        assert_eq!(tg.circuit_delay(), 1.0);
        assert_eq!(tg.required(b), 0.0, "required shifted with circuit delay");
        assert!(tg.is_critical(b));
        assert_eq!(tg.deviation_from_scratch(&nl, &UnitDelay).unwrap(), 0.0);
    }

    #[test]
    fn update_handles_substitution_and_pruning() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::Not, &[g1]).unwrap();
        let g3 = nl.add_gate(GateKind::Or, &[g2, b]).unwrap();
        nl.add_output("y", g3);
        let mut tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        nl.record_edits();
        nl.substitute_stem(g2, a).unwrap();
        nl.prune_dangling();
        let delta = nl.take_delta();
        tg.update(&nl, &UnitDelay, &delta);
        assert_eq!(tg.circuit_delay(), 1.0);
        assert_eq!(tg.deviation_from_scratch(&nl, &UnitDelay).unwrap(), 0.0);
    }

    #[test]
    fn update_tracks_po_driver_changes() {
        // substitute_stem can silently retarget a primary output; the
        // endpoint cache must follow (this is what lets worst_slack take
        // no netlist argument).
        let (mut nl, [a, _, _, g2]) = chain();
        let mut tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        nl.record_edits();
        nl.substitute_stem(g2, a).unwrap();
        nl.prune_dangling();
        let delta = nl.take_delta();
        tg.update(&nl, &UnitDelay, &delta);
        assert_eq!(tg.circuit_delay(), 0.0);
        assert!(tg.worst_slack().abs() <= tg.eps());
    }

    #[test]
    fn update_reflects_load_dependent_delays() {
        // Adding a fanout to a gate changes its own pin delays under
        // LoadDelay; the cached delays and arrivals must follow.
        use crate::LoadDelay;
        use library::standard_library;
        let lib = standard_library();
        let model = LoadDelay::new(&lib, 0.5);
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let c1 = nl.add_gate(GateKind::Buf, &[g]).unwrap();
        nl.add_output("y", c1);
        let mut tg = TimingGraph::from_scratch(&nl, &model).unwrap();
        nl.record_edits();
        let c2 = nl.add_gate(GateKind::Buf, &[g]).unwrap();
        nl.add_output("z", c2);
        let delta = nl.take_delta();
        tg.update(&nl, &model, &delta);
        assert_eq!(tg.deviation_from_scratch(&nl, &model).unwrap(), 0.0);
    }

    #[test]
    fn update_survives_slot_recycling() {
        let (mut nl, [a, b, _, g2]) = chain();
        let mut tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        nl.record_edits();
        nl.rewire_branch(Branch { cell: g2, pin: 0 }, a).unwrap();
        nl.prune_dangling(); // frees g1's slot
        let recycled = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        nl.add_output("z", recycled);
        let delta = nl.take_delta();
        tg.update(&nl, &UnitDelay, &delta);
        assert_eq!(tg.arrival(recycled), 1.0);
        assert_eq!(tg.deviation_from_scratch(&nl, &UnitDelay).unwrap(), 0.0);
    }

    #[test]
    fn constrained_update_keeps_boundary_conditions() {
        let (mut nl, [_, b, _, g2]) = chain();
        let mut tg =
            TimingGraph::from_scratch_constrained(&nl, &UnitDelay, Some(&[2.0, 0.0]), Some(6.0))
                .unwrap();
        assert_eq!(tg.circuit_delay(), 4.0);
        nl.record_edits();
        let g3 = nl.add_gate(GateKind::Not, &[g2]).unwrap();
        nl.add_output("z", g3);
        let delta = nl.take_delta();
        tg.update(&nl, &UnitDelay, &delta);
        assert_eq!(tg.circuit_delay(), 5.0);
        // Explicit requirement persists: slack measured against 6.0.
        assert!((tg.worst_slack() - 1.0).abs() < 1e-9);
        assert!(tg.slack(b) > 1.0);
    }

    #[test]
    fn batched_edits_in_one_update() {
        let mut nl = Netlist::new("t");
        let ins: Vec<SignalId> = (0..4).map(|i| nl.add_input(format!("x{i}"))).collect();
        let g1 = nl.add_gate(GateKind::And, &[ins[0], ins[1]]).unwrap();
        let g2 = nl.add_gate(GateKind::Or, &[g1, ins[2]]).unwrap();
        nl.add_output("y", g2);
        let mut tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        nl.record_edits();
        let h1 = nl.add_gate(GateKind::Xor, &[g2, ins[3]]).unwrap();
        let h2 = nl.add_gate(GateKind::Nand, &[h1, g1]).unwrap();
        nl.add_output("z", h2);
        nl.rewire_branch(Branch { cell: g2, pin: 1 }, ins[3])
            .unwrap();
        let delta = nl.take_delta();
        tg.update(&nl, &UnitDelay, &delta);
        assert_eq!(tg.deviation_from_scratch(&nl, &UnitDelay).unwrap(), 0.0);
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let (nl, _) = chain();
        let mut tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        let before = tg.clone();
        tg.update(&nl, &UnitDelay, &EditDelta::new());
        assert_eq!(tg.circuit_delay(), before.circuit_delay());
        assert_eq!(tg.deviation_from_scratch(&nl, &UnitDelay).unwrap(), 0.0);
    }

    #[test]
    fn nonzero_cutoff_bounds_staleness() {
        // With a coarse cutoff, sub-cutoff ripples stop propagating; the
        // drift stays bounded by depth x cutoff.
        use crate::LibDelay;
        use library::standard_library;
        let lib = standard_library();
        let model = LibDelay::new(&lib);
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let mut prev = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let mut gates = vec![prev];
        for _ in 0..6 {
            prev = nl.add_gate(GateKind::Not, &[prev]).unwrap();
            gates.push(prev);
        }
        nl.add_output("y", prev);
        let cutoff = 0.05;
        let mut tg = TimingGraph::from_scratch(&nl, &model)
            .unwrap()
            .with_cutoff(cutoff);
        // Rebind the first inverter to a slightly different cell.
        nl.record_edits();
        nl.set_lib(gates[0], Some(lib.find("inv4").unwrap().tag()))
            .unwrap();
        let delta = nl.take_delta();
        tg.update(&nl, &model, &delta);
        let dev = tg.deviation_from_scratch(&nl, &model).unwrap();
        assert!(
            dev <= cutoff * (gates.len() + 1) as f64,
            "drift {dev} exceeds the cutoff bound"
        );
    }

    #[test]
    fn per_output_required_times_shape_slack() {
        // One chain, tapped twice: y1 = NOT a (depth 1), y2 = NOT y1
        // (depth 2), with different requirements per output.
        let mut nl = Netlist::new("r");
        let a = nl.add_input("a");
        let g1 = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let g2 = nl.add_gate(GateKind::Not, &[g1]).unwrap();
        nl.add_output("y1", g1);
        nl.add_output("y2", g2);
        let tg = TimingGraph::from_scratch_region(&nl, &UnitDelay, None, &[5.0, 3.0]).unwrap();
        assert_eq!(tg.required(g2), 3.0);
        // g1 must honour both its own output (5.0) and the path through
        // g2 (3.0 − 1.0): the tighter one wins.
        assert_eq!(tg.required(g1), 2.0);
        assert_eq!(tg.required(a), 1.0);
        assert_eq!(tg.worst_slack(), 1.0); // min(5 − 1, 3 − 2)
        assert_eq!(tg.slack(g1), 1.0);
    }

    #[test]
    fn region_constraints_persist_across_updates() {
        let mut nl = Netlist::new("r");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        nl.add_output("y", g);
        // Input b arrives late (a frozen boundary signal with parent
        // arrival 2.0); the output must settle by 4.0.
        let mut tg =
            TimingGraph::from_scratch_region(&nl, &UnitDelay, Some(&[0.0, 2.0]), &[4.0]).unwrap();
        assert_eq!(tg.arrival(g), 3.0);
        assert_eq!(tg.worst_slack(), 1.0);
        // An incremental edit keeps both constraints (the debug
        // cross-check inside update would catch any drift).
        nl.record_edits();
        let h = nl.add_gate(GateKind::Not, &[g]).unwrap();
        nl.add_output("z", h);
        // A new PO appeared after construction: it falls back to the
        // base requirement (the latest constrained output).
        let delta = nl.take_delta();
        tg.update(&nl, &UnitDelay, &delta);
        assert_eq!(tg.arrival(h), 4.0);
        assert_eq!(tg.required(h), 4.0);
        assert_eq!(tg.worst_slack(), 0.0);
    }

    #[test]
    fn rebuild_resets_to_exact() {
        let (mut nl, _) = chain();
        let mut tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        // Edit *without* a journal: the graph goes stale...
        let g = nl
            .add_gate(GateKind::Not, &[nl.outputs()[0].driver()])
            .unwrap();
        nl.add_output("z", g);
        // ...and rebuild is the escape hatch.
        tg.rebuild(&nl, &UnitDelay).unwrap();
        assert_eq!(tg.circuit_delay(), 3.0);
        assert_eq!(tg.deviation_from_scratch(&nl, &UnitDelay).unwrap(), 0.0);
    }
}
