//! NCP — the Number of Critical Paths through each signal.
//!
//! Section 5 of the paper ranks candidate substitutions first by the NCP
//! of their `a`-signal: shortening the signal that the most critical paths
//! run through gives the best chance of reducing the overall delay.
//! Counts are computed as products of forward and backward critical-path
//! counts along critical edges; `f64` accumulation saturates gracefully
//! (to `+inf`) for circuits with exponentially many critical paths, and
//! the `inf × 0` products that saturation can produce are clamped to 0 so
//! a NaN can never poison downstream `total_cmp` ranking.

use crate::TimingGraph;
use netlist::{Fanout, Netlist, NetlistError, SignalId};

/// Per-signal critical-path counts for one timing snapshot.
///
/// # Example
///
/// ```
/// use netlist::{Netlist, GateKind};
/// use timing::{CriticalPaths, TimingGraph, UnitDelay};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two equal-length paths from `a` converge on the output.
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let g1 = nl.add_gate(GateKind::Not, &[a])?;
/// let g2 = nl.add_gate(GateKind::Buf, &[a])?;
/// let g3 = nl.add_gate(GateKind::And, &[g1, g2])?;
/// nl.add_output("y", g3);
/// let tg = TimingGraph::from_scratch(&nl, &UnitDelay)?;
/// let cp = CriticalPaths::count(&nl, &tg)?;
/// assert_eq!(cp.ncp(a), 2.0);
/// assert_eq!(cp.ncp(g1), 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CriticalPaths {
    forward: Vec<f64>,
    backward: Vec<f64>,
}

/// Clamps the `inf × 0` NaN that saturated path counts can produce: an
/// infinite count on one side of a signal with no critical continuation
/// on the other side means no complete critical path runs through it.
fn saturating_product(a: f64, b: f64) -> f64 {
    let p = a * b;
    if p.is_nan() {
        0.0
    } else {
        p
    }
}

impl CriticalPaths {
    /// Counts critical paths through every signal under the given timing
    /// snapshot.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if `nl` is not a DAG.
    pub fn count(nl: &Netlist, tg: &TimingGraph) -> Result<CriticalPaths, NetlistError> {
        let order = nl.topo_order()?;
        let mut forward = vec![0.0_f64; nl.capacity()];
        for &s in &order {
            if !tg.is_critical(s) {
                continue;
            }
            if nl.kind(s).is_source() {
                forward[s.index()] = 1.0;
                continue;
            }
            let mut count = 0.0;
            for (pin, &f) in nl.fanins(s).iter().enumerate() {
                if tg.is_critical_edge(nl, s, pin) {
                    count += forward[f.index()];
                }
            }
            forward[s.index()] = count;
        }
        let mut backward = vec![0.0_f64; nl.capacity()];
        for &s in order.iter().rev() {
            if !tg.is_critical(s) {
                continue;
            }
            let mut count = 0.0;
            for fo in nl.fanouts(s) {
                match *fo {
                    Fanout::Po(_) => {
                        if (tg.arrival(s) - tg.circuit_delay()).abs() <= tg.eps() {
                            count += 1.0;
                        }
                    }
                    Fanout::Gate { cell, pin } => {
                        if tg.is_critical_edge(nl, cell, pin as usize) {
                            count += backward[cell.index()];
                        }
                    }
                }
            }
            backward[s.index()] = count;
        }
        Ok(CriticalPaths { forward, backward })
    }

    /// The number of complete critical paths running through `s` (0 for
    /// non-critical signals). Saturates to `+inf`, never NaN.
    #[must_use]
    pub fn ncp(&self, s: SignalId) -> f64 {
        saturating_product(self.forward[s.index()], self.backward[s.index()])
    }

    /// Number of critical partial paths from primary inputs to `s`.
    #[must_use]
    pub fn forward(&self, s: SignalId) -> f64 {
        self.forward[s.index()]
    }

    /// Number of critical partial paths from `s` to primary outputs.
    #[must_use]
    pub fn backward(&self, s: SignalId) -> f64 {
        self.backward[s.index()]
    }

    /// Total number of critical paths in the circuit (the sum of NCP over
    /// critical primary-output drivers' backward counts from sources).
    /// Saturates to `+inf`, never NaN.
    #[must_use]
    pub fn total(&self, nl: &Netlist) -> f64 {
        nl.inputs()
            .iter()
            .map(|&pi| saturating_product(self.forward[pi.index()], self.backward[pi.index()]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TimingGraph, UnitDelay};
    use netlist::GateKind;

    #[test]
    fn diamond_has_two_critical_paths() {
        // a -> g1 -> g3 and a -> g2 -> g3: both length 2, both critical.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g1 = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let g2 = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        let g3 = nl.add_gate(GateKind::And, &[g1, g2]).unwrap();
        nl.add_output("y", g3);
        let tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        let cp = CriticalPaths::count(&nl, &tg).unwrap();
        assert_eq!(cp.ncp(g3), 2.0);
        assert_eq!(cp.ncp(a), 2.0);
        assert_eq!(cp.ncp(g1), 1.0);
        assert_eq!(cp.ncp(g2), 1.0);
        assert_eq!(cp.total(&nl), 2.0);
    }

    #[test]
    fn noncritical_signal_has_zero_ncp() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let g2 = nl.add_gate(GateKind::And, &[g1, b]).unwrap();
        nl.add_output("y", g2);
        let tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        let cp = CriticalPaths::count(&nl, &tg).unwrap();
        assert_eq!(cp.ncp(b), 0.0);
        assert_eq!(cp.ncp(g1), 1.0);
    }

    #[test]
    fn wide_fanout_multiplies() {
        // a feeds two parallel 2-level chains converging on two outputs:
        // four critical paths through a? No: two chains, each one path,
        // NCP(a) = 2.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g1 = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let g2 = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let g3 = nl.add_gate(GateKind::Not, &[g1]).unwrap();
        let g4 = nl.add_gate(GateKind::Not, &[g2]).unwrap();
        nl.add_output("y", g3);
        nl.add_output("z", g4);
        let tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        let cp = CriticalPaths::count(&nl, &tg).unwrap();
        assert_eq!(cp.ncp(a), 2.0);
        assert_eq!(cp.ncp(g1), 1.0);
        assert_eq!(cp.total(&nl), 2.0);
    }

    #[test]
    fn ladder_counts_grow() {
        // A ladder of n XOR stages where both legs are critical gives 2^n
        // critical paths.
        let mut nl = Netlist::new("t");
        let mut cur = nl.add_input("x0");
        let mut side = nl.add_input("x1");
        for i in 0..10 {
            let next = nl.add_gate(GateKind::Xor, &[cur, side]).unwrap();
            let next_side = nl.add_gate(GateKind::Xnor, &[cur, side]).unwrap();
            cur = next;
            side = next_side;
            let _ = i;
        }
        let g = nl.add_gate(GateKind::And, &[cur, side]).unwrap();
        nl.add_output("y", g);
        let tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        let cp = CriticalPaths::count(&nl, &tg).unwrap();
        assert!(cp.ncp(g) >= 1024.0);
    }

    #[test]
    fn deep_ladder_saturates_without_nan() {
        // ~1100 doubling stages overflow f64 (2^1100 >> f64::MAX). The
        // counts must saturate to +inf — and every ranking-facing query
        // must stay NaN-free so `total_cmp` ordering remains sound.
        let mut nl = Netlist::new("t");
        let mut cur = nl.add_input("x0");
        let mut side = nl.add_input("x1");
        for _ in 0..1100 {
            let next = nl.add_gate(GateKind::Xor, &[cur, side]).unwrap();
            let next_side = nl.add_gate(GateKind::Xnor, &[cur, side]).unwrap();
            cur = next;
            side = next_side;
        }
        let g = nl.add_gate(GateKind::And, &[cur, side]).unwrap();
        nl.add_output("y", g);
        let tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        let cp = CriticalPaths::count(&nl, &tg).unwrap();
        assert!(
            cp.forward(g).is_infinite(),
            "deep path count must saturate, got {}",
            cp.forward(g)
        );
        for s in nl.signals() {
            assert!(!cp.ncp(s).is_nan(), "NaN ncp at {s}");
            assert!(!cp.forward(s).is_nan() && !cp.backward(s).is_nan());
        }
        assert!(!cp.total(&nl).is_nan(), "NaN total");
        assert!(cp.total(&nl).is_infinite());
        // Saturated counts still rank above finite ones under total_cmp.
        let finite = cp.ncp(nl.inputs()[0]); // forward 1 at the sources
        let _ = finite;
        let mut ranked: Vec<SignalId> = nl.signals().collect();
        ranked.sort_by(|&x, &y| cp.ncp(y).total_cmp(&cp.ncp(x)));
        assert!(
            cp.ncp(ranked[0]) >= cp.ncp(*ranked.last().unwrap()),
            "ranking order broken by saturation"
        );
    }

    #[test]
    fn saturating_product_clamps_nan() {
        assert_eq!(saturating_product(f64::INFINITY, 0.0), 0.0);
        assert_eq!(saturating_product(0.0, f64::INFINITY), 0.0);
        assert_eq!(saturating_product(f64::INFINITY, 2.0), f64::INFINITY);
        assert_eq!(saturating_product(3.0, 4.0), 12.0);
    }
}
