//! Enumeration of the k topologically-worst paths — the reporting
//! counterpart to [`crate::CriticalPaths`]' counting.

use crate::TimingGraph;
use netlist::{Netlist, SignalId};

/// One enumerated path: signals from a primary input (or constant) to a
/// primary-output driver, with its total delay.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingPath {
    /// The signals along the path, source first.
    pub signals: Vec<SignalId>,
    /// Total path delay (the arrival time at the endpoint along this
    /// path).
    pub delay: f64,
}

/// Enumerates up to `k` worst paths, longest first.
///
/// Uses best-first search over partial paths extended backwards from the
/// primary-output drivers; each partial path is ranked by its best
/// achievable total delay (the current suffix delay plus the arrival time
/// of its head), so paths pop out in exact worst-first order.
///
/// # Errors
///
/// [`NetlistError::CycleDetected`] if `nl` is not a DAG.
///
/// # Example
///
/// ```
/// use netlist::{Netlist, GateKind};
/// use timing::{worst_paths, TimingGraph, UnitDelay};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g1 = nl.add_gate(GateKind::Not, &[a])?;
/// let g2 = nl.add_gate(GateKind::And, &[g1, b])?;
/// nl.add_output("y", g2);
/// let tg = TimingGraph::from_scratch(&nl, &UnitDelay)?;
/// let paths = worst_paths(&nl, &tg, 2);
/// assert_eq!(paths.len(), 2);
/// assert_eq!(paths[0].delay, 2.0); // a -> g1 -> g2
/// assert_eq!(paths[1].delay, 1.0); // b -> g2
/// assert!(paths[0].delay >= paths[1].delay);
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn worst_paths(nl: &Netlist, tg: &TimingGraph, k: usize) -> Vec<TimingPath> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    /// A partial path: suffix from `head` to an output driver.
    struct Partial {
        /// Best achievable total delay = arrival(head) + suffix_delay.
        bound: f64,
        /// Delay accumulated along the suffix (head exclusive).
        suffix_delay: f64,
        /// Suffix signals, head first.
        suffix: Vec<SignalId>,
    }
    impl PartialEq for Partial {
        fn eq(&self, other: &Self) -> bool {
            self.bound == other.bound
        }
    }
    impl Eq for Partial {}
    impl PartialOrd for Partial {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Partial {
        fn cmp(&self, other: &Self) -> Ordering {
            self.bound.total_cmp(&other.bound)
        }
    }

    let mut heap: BinaryHeap<Partial> = BinaryHeap::new();
    let mut seen_endpoints = std::collections::HashSet::new();
    for po in nl.outputs() {
        let d = po.driver();
        if seen_endpoints.insert(d) {
            heap.push(Partial {
                bound: tg.arrival(d),
                suffix_delay: 0.0,
                suffix: vec![d],
            });
        }
    }
    let mut out = Vec::with_capacity(k);
    while let Some(p) = heap.pop() {
        if out.len() >= k {
            break;
        }
        let head = p.suffix[0];
        if nl.kind(head).is_source() {
            // `suffix` is built by prepending fanins, so it is already in
            // source-to-sink order.
            out.push(TimingPath {
                signals: p.suffix,
                delay: p.bound,
            });
            continue;
        }
        for (pin, &f) in nl.fanins(head).iter().enumerate() {
            let edge = tg.pin_delay(head, pin);
            let mut suffix = Vec::with_capacity(p.suffix.len() + 1);
            suffix.push(f);
            suffix.extend_from_slice(&p.suffix);
            heap.push(Partial {
                bound: tg.arrival(f) + edge + p.suffix_delay,
                suffix_delay: edge + p.suffix_delay,
                suffix,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnitDelay;
    use netlist::GateKind;

    #[test]
    fn enumerates_in_worst_first_order() {
        // Three paths of lengths 3, 2, 1.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let g2 = nl.add_gate(GateKind::And, &[g1, b]).unwrap();
        let g3 = nl.add_gate(GateKind::Or, &[g2, c]).unwrap();
        nl.add_output("y", g3);
        let tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        let paths = worst_paths(&nl, &tg, 10);
        assert_eq!(paths.len(), 3);
        assert_eq!(paths[0].delay, 3.0);
        assert_eq!(paths[0].signals, vec![a, g1, g2, g3]);
        assert_eq!(paths[1].delay, 2.0);
        assert_eq!(paths[1].signals, vec![b, g2, g3]);
        assert_eq!(paths[2].delay, 1.0);
        assert_eq!(paths[2].signals, vec![c, g3]);
    }

    #[test]
    fn k_limits_the_output() {
        let mut nl = Netlist::new("t");
        let ins: Vec<SignalId> = (0..6).map(|i| nl.add_input(format!("x{i}"))).collect();
        let g = nl.add_gate(GateKind::And, &ins).unwrap();
        nl.add_output("y", g);
        let tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        let paths = worst_paths(&nl, &tg, 3);
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|p| p.delay == 1.0));
    }

    #[test]
    fn path_count_matches_ncp_total() {
        // The number of full-delay paths equals the NCP total.
        use crate::CriticalPaths;
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g1 = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let g2 = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        let g3 = nl.add_gate(GateKind::And, &[g1, g2]).unwrap();
        nl.add_output("y", g3);
        let tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        let cp = CriticalPaths::count(&nl, &tg).unwrap();
        let paths = worst_paths(&nl, &tg, 100);
        let worst = tg.circuit_delay();
        let n_critical = paths
            .iter()
            .filter(|p| (p.delay - worst).abs() < 1e-9)
            .count();
        assert_eq!(n_critical as f64, cp.total(&nl));
    }

    #[test]
    fn empty_netlist_has_no_paths() {
        let nl = Netlist::new("t");
        let tg = TimingGraph::from_scratch(&nl, &UnitDelay).unwrap();
        assert!(worst_paths(&nl, &tg, 5).is_empty());
    }
}
