use crate::DelayModel;
use netlist::{Fanout, Netlist, NetlistError, SignalId};

/// Tolerance for "critical" comparisons, relative to the circuit delay.
const REL_EPS: f64 = 1e-9;

/// A static timing analysis snapshot of one netlist state.
///
/// Arrival times propagate forward from primary inputs (arrival 0);
/// required times propagate backward from primary outputs, whose required
/// time is the circuit delay. A signal is *critical* when its slack is
/// (numerically) zero — critical gates are the only `a`-signal candidates
/// of the paper's delay-reduction phase.
#[derive(Debug, Clone)]
pub struct Sta {
    arrival: Vec<f64>,
    required: Vec<f64>,
    circuit_delay: f64,
    eps: f64,
}

impl Sta {
    /// Runs a full forward/backward timing analysis with the default
    /// boundary conditions: inputs arrive at 0, outputs are required at
    /// the circuit delay (so the worst paths have zero slack).
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if `nl` is not a DAG.
    pub fn analyze<M: DelayModel>(nl: &Netlist, model: &M) -> Result<Sta, NetlistError> {
        Self::analyze_constrained(nl, model, None, None)
    }

    /// Timing analysis under explicit boundary constraints.
    ///
    /// `input_arrivals[i]` is the arrival time of primary input `i`
    /// (default 0). `po_required` is the required time at every primary
    /// output; when `None`, the circuit delay is used, making the worst
    /// paths exactly critical. With an explicit requirement, slacks can
    /// be genuinely negative (the constraint is violated) or uniformly
    /// positive (timing met with margin) — and
    /// [`is_critical`](Self::is_critical) then reflects the *constraint*,
    /// not the topological worst path.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if `nl` is not a DAG.
    ///
    /// # Panics
    ///
    /// Panics if `input_arrivals` is given with the wrong length.
    pub fn analyze_constrained<M: DelayModel>(
        nl: &Netlist,
        model: &M,
        input_arrivals: Option<&[f64]>,
        po_required: Option<f64>,
    ) -> Result<Sta, NetlistError> {
        if let Some(ia) = input_arrivals {
            assert_eq!(
                ia.len(),
                nl.inputs().len(),
                "one arrival time per primary input"
            );
        }
        telemetry::counter_add("sta.recomputes", 1);
        let order = nl.topo_order()?;
        let mut arrival = vec![0.0_f64; nl.capacity()];
        if let Some(ia) = input_arrivals {
            for (i, &pi) in nl.inputs().iter().enumerate() {
                arrival[pi.index()] = ia[i];
            }
        }
        for &s in &order {
            if nl.kind(s).is_source() {
                continue;
            }
            let mut at: f64 = 0.0;
            for (pin, &f) in nl.fanins(s).iter().enumerate() {
                at = at.max(arrival[f.index()] + model.pin_delay(nl, s, pin));
            }
            arrival[s.index()] = at;
        }
        let circuit_delay = nl
            .outputs()
            .iter()
            .map(|po| arrival[po.driver().index()])
            .fold(0.0_f64, f64::max);
        let eps = circuit_delay.abs().max(1.0) * REL_EPS;
        let po_req = po_required.unwrap_or(circuit_delay);

        let mut required = vec![f64::INFINITY; nl.capacity()];
        for &s in order.iter().rev() {
            let mut req = f64::INFINITY;
            for fo in nl.fanouts(s) {
                match *fo {
                    Fanout::Po(_) => req = req.min(po_req),
                    Fanout::Gate { cell, pin } => {
                        req = req
                            .min(required[cell.index()] - model.pin_delay(nl, cell, pin as usize));
                    }
                }
            }
            required[s.index()] = req;
        }
        Ok(Sta {
            arrival,
            required,
            circuit_delay,
            eps,
        })
    }

    /// The worst (smallest) slack over all signals that drive anything —
    /// negative iff a constraint is violated.
    #[must_use]
    pub fn worst_slack(&self, nl: &Netlist) -> f64 {
        nl.signals()
            .filter(|&s| nl.fanout_count(s) > 0)
            .map(|s| self.slack(s))
            .fold(f64::INFINITY, f64::min)
    }

    /// Arrival time of a signal.
    #[must_use]
    pub fn arrival(&self, s: SignalId) -> f64 {
        self.arrival[s.index()]
    }

    /// Required time of a signal (`+inf` for signals driving nothing).
    #[must_use]
    pub fn required(&self, s: SignalId) -> f64 {
        self.required[s.index()]
    }

    /// Slack of a signal: `required - arrival`.
    #[must_use]
    pub fn slack(&self, s: SignalId) -> f64 {
        self.required[s.index()] - self.arrival[s.index()]
    }

    /// The topological circuit delay: the latest primary-output arrival.
    #[must_use]
    pub fn circuit_delay(&self) -> f64 {
        self.circuit_delay
    }

    /// The comparison tolerance used by the criticality tests.
    #[must_use]
    pub fn eps(&self) -> f64 {
        self.eps
    }

    /// Returns `true` if `s` lies on a topological critical path.
    #[must_use]
    pub fn is_critical(&self, s: SignalId) -> bool {
        self.slack(s) <= self.eps
    }

    /// All critical signals of the netlist, in id order (inputs included).
    #[must_use]
    pub fn critical_signals(&self, nl: &Netlist) -> Vec<SignalId> {
        nl.signals().filter(|&s| self.is_critical(s)).collect()
    }

    /// All critical *gates* (the paper's critical-gate set).
    #[must_use]
    pub fn critical_gates(&self, nl: &Netlist) -> Vec<SignalId> {
        nl.gates().filter(|&s| self.is_critical(s)).collect()
    }

    /// Returns `true` if the fanin edge `(fanin pin `pin` of `gate`)` is a
    /// critical edge: both endpoints critical and the edge delay tight.
    #[must_use]
    pub fn is_critical_edge<M: DelayModel>(
        &self,
        nl: &Netlist,
        model: &M,
        gate: SignalId,
        pin: usize,
    ) -> bool {
        let src = nl.fanins(gate)[pin];
        self.is_critical(src)
            && self.is_critical(gate)
            && (self.arrival(src) + model.pin_delay(nl, gate, pin) - self.arrival(gate)).abs()
                <= self.eps
    }

    /// Extracts one worst (topologically longest) path as a signal chain
    /// from a primary input to a primary output driver.
    ///
    /// Returns an empty vector for netlists without outputs.
    #[must_use]
    pub fn worst_path<M: DelayModel>(&self, nl: &Netlist, model: &M) -> Vec<SignalId> {
        let Some(end) = nl
            .outputs()
            .iter()
            .map(netlist::PrimaryOutput::driver)
            .max_by(|&a, &b| self.arrival(a).total_cmp(&self.arrival(b)))
        else {
            return Vec::new();
        };
        let mut path = vec![end];
        let mut cur = end;
        while !nl.kind(cur).is_source() {
            let (pin, _) = nl
                .fanins(cur)
                .iter()
                .enumerate()
                .max_by(|(pa, &a), (pb, &b)| {
                    (self.arrival(a) + model.pin_delay(nl, cur, *pa))
                        .total_cmp(&(self.arrival(b) + model.pin_delay(nl, cur, *pb)))
                })
                .expect("gates have fanins");
            cur = nl.fanins(cur)[pin];
            path.push(cur);
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UnitDelay;
    use netlist::GateKind;

    /// Chain a -> g1 -> g2 -> y, plus a short side branch b -> g2.
    fn chain() -> (Netlist, [SignalId; 4]) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let g2 = nl.add_gate(GateKind::And, &[g1, b]).unwrap();
        nl.add_output("y", g2);
        (nl, [a, b, g1, g2])
    }

    #[test]
    fn arrivals_and_delay() {
        let (nl, [a, b, g1, g2]) = chain();
        let sta = Sta::analyze(&nl, &UnitDelay).unwrap();
        assert_eq!(sta.arrival(a), 0.0);
        assert_eq!(sta.arrival(g1), 1.0);
        assert_eq!(sta.arrival(g2), 2.0);
        assert_eq!(sta.circuit_delay(), 2.0);
        assert_eq!(sta.required(g2), 2.0);
        assert_eq!(sta.required(g1), 1.0);
        assert_eq!(sta.required(b), 1.0);
        assert_eq!(sta.slack(b), 1.0);
        assert!(!sta.is_critical(b));
        for s in [a, g1, g2] {
            assert!(sta.is_critical(s), "{s} should be critical");
        }
    }

    #[test]
    fn critical_edges() {
        let (nl, [_, _, _, g2]) = chain();
        let sta = Sta::analyze(&nl, &UnitDelay).unwrap();
        assert!(sta.is_critical_edge(&nl, &UnitDelay, g2, 0)); // from g1
        assert!(!sta.is_critical_edge(&nl, &UnitDelay, g2, 1)); // from b
    }

    #[test]
    fn worst_path_walks_the_chain() {
        let (nl, [a, _, g1, g2]) = chain();
        let sta = Sta::analyze(&nl, &UnitDelay).unwrap();
        assert_eq!(sta.worst_path(&nl, &UnitDelay), vec![a, g1, g2]);
    }

    #[test]
    fn unused_signal_has_infinite_required() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let _dangling = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let g = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        nl.add_output("y", g);
        let sta = Sta::analyze(&nl, &UnitDelay).unwrap();
        assert!(sta.required(_dangling).is_infinite());
        assert!(!sta.is_critical(_dangling));
    }

    #[test]
    fn mapped_delays_respected() {
        use crate::LibDelay;
        use library::{standard_library, MapGoal, Mapper};
        let lib = standard_library();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        nl.add_output("y", g);
        let mapped = Mapper::new(&lib).goal(MapGoal::Area).map(&nl).unwrap();
        let sta = Sta::analyze(&mapped, &LibDelay::new(&lib)).unwrap();
        // One xor2 cell with 2.0 ns pins.
        assert!((sta.circuit_delay() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_netlist() {
        let nl = Netlist::new("t");
        let sta = Sta::analyze(&nl, &UnitDelay).unwrap();
        assert_eq!(sta.circuit_delay(), 0.0);
        assert!(sta.worst_path(&nl, &UnitDelay).is_empty());
    }

    #[test]
    fn constrained_analysis_shifts_slack() {
        let (nl, [a, b, g1, g2]) = chain();
        // Tight requirement: everything is late.
        let sta = Sta::analyze_constrained(&nl, &UnitDelay, None, Some(1.0)).unwrap();
        assert!(sta.worst_slack(&nl) < 0.0);
        assert!(sta.slack(g1) < 0.0);
        // Loose requirement: nothing is critical.
        let sta = Sta::analyze_constrained(&nl, &UnitDelay, None, Some(10.0)).unwrap();
        assert!(sta.worst_slack(&nl) > 0.0);
        assert!(!sta.is_critical(g2));
        // Input arrival shifts downstream arrivals.
        let sta = Sta::analyze_constrained(&nl, &UnitDelay, Some(&[5.0, 0.0]), None).unwrap();
        assert_eq!(sta.arrival(a), 5.0);
        assert_eq!(sta.arrival(g1), 6.0);
        assert_eq!(sta.circuit_delay(), 7.0);
        // b's path is now very uncritical.
        assert!(sta.slack(b) > 5.0);
    }

    #[test]
    fn default_analysis_equals_unconstrained() {
        let (nl, _) = chain();
        let a = Sta::analyze(&nl, &UnitDelay).unwrap();
        let b = Sta::analyze_constrained(&nl, &UnitDelay, None, None).unwrap();
        for s in nl.signals() {
            assert_eq!(a.arrival(s), b.arrival(s));
            assert_eq!(a.required(s), b.required(s));
        }
    }

    #[test]
    fn worst_path_delays_telescope() {
        // Along the worst path, each step's arrival difference equals the
        // pin delay — on a mapped netlist with heterogeneous cells.
        use crate::LibDelay;
        use library::{standard_library, MapGoal, Mapper};
        let lib = standard_library();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::Aoi21, &[g1, c, a]).unwrap();
        let g3 = nl.add_gate(GateKind::Nand, &[g2, b]).unwrap();
        nl.add_output("y", g3);
        let mapped = Mapper::new(&lib).goal(MapGoal::Delay).map(&nl).unwrap();
        let model = LibDelay::new(&lib);
        let sta = Sta::analyze(&mapped, &model).unwrap();
        let path = sta.worst_path(&mapped, &model);
        assert!(path.len() >= 2);
        for w in path.windows(2) {
            let (src, dst) = (w[0], w[1]);
            let pin = mapped
                .fanins(dst)
                .iter()
                .position(|&f| f == src)
                .expect("consecutive path nodes are connected");
            let step = model.pin_delay(&mapped, dst, pin);
            assert!(
                (sta.arrival(src) + step - sta.arrival(dst)).abs() < 1e-9,
                "non-tight worst-path step"
            );
        }
        assert!((sta.arrival(*path.last().unwrap()) - sta.circuit_delay()).abs() < 1e-9);
    }

    #[test]
    fn slack_is_never_negative_without_constraints() {
        // With required = circuit delay at every PO, min slack is 0.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::Xor, &[g1, a]).unwrap();
        nl.add_output("y", g2);
        nl.add_output("z", g1);
        let sta = Sta::analyze(&nl, &UnitDelay).unwrap();
        for s in nl.signals() {
            assert!(sta.slack(s) >= -sta.eps(), "negative slack at {s}");
        }
        let min_slack = nl
            .signals()
            .map(|s| sta.slack(s))
            .fold(f64::INFINITY, f64::min);
        assert!(min_slack.abs() <= sta.eps());
    }
}
