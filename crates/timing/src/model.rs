use library::{LibCellId, Library};
use netlist::{GateKind, Netlist, SignalId};

/// A delay model: maps a gate input pin to its pin-to-output block delay.
///
/// Implementations must return non-negative finite values. Sources
/// (inputs, constants) are never queried.
pub trait DelayModel {
    /// Block delay from input `pin` of `gate` to its output.
    fn pin_delay(&self, nl: &Netlist, gate: SignalId, pin: usize) -> f64;

    /// Area contribution of `gate`, used for area-aware reporting.
    fn area(&self, nl: &Netlist, gate: SignalId) -> f64;
}

/// The unit delay model: every gate adds one delay unit, every gate has
/// unit area. Used for unmapped netlists (the model the paper criticizes
/// pre-mapping optimizers for relying on).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitDelay;

impl DelayModel for UnitDelay {
    fn pin_delay(&self, _nl: &Netlist, _gate: SignalId, _pin: usize) -> f64 {
        1.0
    }

    fn area(&self, _nl: &Netlist, _gate: SignalId) -> f64 {
        1.0
    }
}

/// Library-accurate delays for mapped netlists: each gate's bound cell
/// supplies per-pin block delays and area.
///
/// Gates without a binding fall back to the cheapest library cell of the
/// same kind and arity, and to the unit model if the library has none —
/// this keeps freshly inserted, not-yet-bound gates analyzable.
#[derive(Debug, Clone, Copy)]
pub struct LibDelay<'a> {
    lib: &'a Library,
}

impl<'a> LibDelay<'a> {
    /// Creates the model over `lib`.
    #[must_use]
    pub fn new(lib: &'a Library) -> Self {
        LibDelay { lib }
    }

    /// The underlying library.
    #[must_use]
    pub fn library(&self) -> &'a Library {
        self.lib
    }

    fn cell_of(&self, nl: &Netlist, gate: SignalId) -> Option<&'a library::LibCell> {
        match nl.cell(gate).lib() {
            Some(tag) => Some(self.lib.cell(LibCellId::from_tag(tag))),
            None => {
                let kind = nl.kind(gate);
                let arity = nl.fanins(gate).len();
                self.lib.cheapest(kind, arity).map(|id| self.lib.cell(id))
            }
        }
    }
}

impl DelayModel for LibDelay<'_> {
    fn pin_delay(&self, nl: &Netlist, gate: SignalId, pin: usize) -> f64 {
        match self.cell_of(nl, gate) {
            Some(cell) => cell.pin_delays()[pin],
            None => 1.0,
        }
    }

    fn area(&self, nl: &Netlist, gate: SignalId) -> f64 {
        match nl.kind(gate) {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0.0,
            _ => self.cell_of(nl, gate).map_or(1.0, library::LibCell::area),
        }
    }
}

/// A fanout-load-aware delay model: each gate's pin delay grows linearly
/// with the number of loads its output drives.
///
/// The paper deliberately ignores fanout dependencies ("mapping was done
/// without fanout optimization since at this point we do not consider
/// fanout dependencies in our implementation"); this model quantifies
/// what that simplification hides. See the `fanout_sensitivity` example
/// for the comparison experiment.
#[derive(Debug, Clone, Copy)]
pub struct LoadDelay<'a> {
    base: LibDelay<'a>,
    per_load: f64,
}

impl<'a> LoadDelay<'a> {
    /// Creates the model: `per_load` is the extra delay added per fanout
    /// connection beyond the first (in the library's delay units).
    ///
    /// # Panics
    ///
    /// Panics if `per_load` is negative or non-finite.
    #[must_use]
    pub fn new(lib: &'a Library, per_load: f64) -> Self {
        assert!(
            per_load.is_finite() && per_load >= 0.0,
            "per-load delay must be non-negative"
        );
        LoadDelay {
            base: LibDelay::new(lib),
            per_load,
        }
    }
}

impl DelayModel for LoadDelay<'_> {
    fn pin_delay(&self, nl: &Netlist, gate: SignalId, pin: usize) -> f64 {
        let loads = nl.fanout_count(gate).saturating_sub(1) as f64;
        self.base.pin_delay(nl, gate, pin) + self.per_load * loads
    }

    fn area(&self, nl: &Netlist, gate: SignalId) -> f64 {
        self.base.area(nl, gate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use library::standard_library;

    #[test]
    fn unit_delay_is_one_everywhere() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Not, &[a]).unwrap();
        nl.add_output("y", g);
        assert_eq!(UnitDelay.pin_delay(&nl, g, 0), 1.0);
        assert_eq!(UnitDelay.area(&nl, g), 1.0);
    }

    #[test]
    fn lib_delay_reads_bindings() {
        let lib = standard_library();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Not, &[a]).unwrap();
        nl.set_lib(g, Some(lib.find("inv4").unwrap().tag()))
            .unwrap();
        nl.add_output("y", g);
        let model = LibDelay::new(&lib);
        assert!((model.pin_delay(&nl, g, 0) - 0.4).abs() < 1e-12);
        assert!((model.area(&nl, g) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn load_delay_scales_with_fanout() {
        let lib = standard_library();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Not, &[a]).unwrap();
        nl.set_lib(g, Some(lib.find("inv1").unwrap().tag()))
            .unwrap();
        let c1 = nl.add_gate(GateKind::Buf, &[g]).unwrap();
        let c2 = nl.add_gate(GateKind::Buf, &[g]).unwrap();
        let c3 = nl.add_gate(GateKind::Buf, &[g]).unwrap();
        nl.add_output("y1", c1);
        nl.add_output("y2", c2);
        nl.add_output("y3", c3);
        let model = LoadDelay::new(&lib, 0.2);
        // inv1 base 1.0 + 2 extra loads x 0.2.
        assert!((model.pin_delay(&nl, g, 0) - 1.4).abs() < 1e-12);
        // Zero per-load degenerates to the plain library model.
        let flat = LoadDelay::new(&lib, 0.0);
        assert!((flat.pin_delay(&nl, g, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unbound_gate_falls_back_to_cheapest() {
        let lib = standard_library();
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Not, &[a]).unwrap(); // no binding
        nl.add_output("y", g);
        let model = LibDelay::new(&lib);
        // inv1 is the cheapest inverter: delay 1.0, area 1.0.
        assert!((model.pin_delay(&nl, g, 0) - 1.0).abs() < 1e-12);
        assert!((model.area(&nl, g) - 1.0).abs() < 1e-12);
    }
}
