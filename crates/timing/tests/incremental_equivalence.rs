//! Property tests for the incremental timing engine: after an arbitrary
//! sequence of netlist edits, [`TimingGraph::update`] must agree with a
//! from-scratch analysis on every arrival, required time and slack.
//!
//! The edit mix mirrors what the optimizer actually does: gate
//! insertions (new substitution logic), branch rewires (`IS2`/`IS3`
//! input substitutions), and stem substitutions followed by pruning
//! (`OS2`/`OS3` with redundancy removal). Each case runs both on a
//! generated random netlist and on the dp96 workload the benchmarks use.

use netlist::{Branch, GateKind, Netlist, SignalId};
use proptest::prelude::*;
use timing::{TimingGraph, UnitDelay};
use workloads::datapath;

/// The tightened tolerance: with the default cutoff of 0.0, incremental
/// propagation is exact, so the deviation must be zero to within noise
/// far below any real gate delay.
const TIGHT_EPS: f64 = 1e-12;

/// One random edit, encoded with indices resolved against the live
/// signal pool at application time (so every case is applicable no
/// matter how earlier edits reshaped the netlist).
#[derive(Debug, Clone)]
enum Edit {
    /// Insert a gate over existing signals; every third insertion also
    /// becomes a new primary output so the new logic is observable.
    InsertGate { kind: u8, fanins: Vec<usize> },
    /// Rewire one input pin (the paper's input substitution).
    RewireBranch { cell: usize, pin: usize, to: usize },
    /// Redirect a stem and prune the dangling cone (output substitution
    /// plus redundancy removal).
    SubstituteAndPrune { from: usize, to: usize },
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (0u8..6, proptest::collection::vec(0usize..256, 1..4))
            .prop_map(|(kind, fanins)| Edit::InsertGate { kind, fanins }),
        (0usize..256, 0usize..4, 0usize..256).prop_map(|(cell, pin, to)| Edit::RewireBranch {
            cell,
            pin,
            to
        }),
        (0usize..256, 0usize..256).prop_map(|(from, to)| Edit::SubstituteAndPrune { from, to }),
    ]
}

/// Applies one edit, tolerating structural rejections (cycles, bad
/// pins): a rejected edit must simply leave graph and netlist in sync.
fn apply_edit(nl: &mut Netlist, e: &Edit, outputs_added: &mut usize) {
    let pool: Vec<SignalId> = nl.signals().collect();
    assert!(!pool.is_empty());
    let pick = |i: usize| pool[i % pool.len()];
    match e {
        Edit::InsertGate { kind, fanins } => {
            let kind = match kind % 6 {
                0 => GateKind::And,
                1 => GateKind::Or,
                2 => GateKind::Nand,
                3 => GateKind::Xor,
                4 => GateKind::Not,
                _ => GateKind::Nor,
            };
            let arity = if kind == GateKind::Not {
                1
            } else {
                fanins.len().clamp(2, 4)
            };
            let ins: Vec<SignalId> = (0..arity)
                .map(|i| pick(*fanins.get(i).unwrap_or(&i)))
                .collect();
            if let Ok(g) = nl.add_gate(kind, &ins) {
                if outputs_added.is_multiple_of(3) {
                    nl.add_output(format!("tp{outputs_added}"), g);
                }
                *outputs_added += 1;
            }
        }
        Edit::RewireBranch { cell, pin, to } => {
            let branch = Branch {
                cell: pick(*cell),
                pin: *pin as u32,
            };
            let _ = nl.rewire_branch(branch, pick(*to));
        }
        Edit::SubstituteAndPrune { from, to } => {
            if nl.substitute_stem(pick(*from), pick(*to)).is_ok() {
                nl.prune_dangling();
            }
        }
    }
}

/// Drives the incremental engine through `edits` (one `update` per edit,
/// exactly as the optimizer consumes the journal) and checks it against
/// a from-scratch analysis at both the default and tightened tolerance.
fn check_incremental_matches_full(mut nl: Netlist, edits: &[Edit]) -> Result<(), TestCaseError> {
    let model = UnitDelay;
    let mut tg = TimingGraph::from_scratch(&nl, &model).expect("acyclic seed");
    nl.record_edits();
    let mut outputs_added = 0usize;
    for e in edits {
        apply_edit(&mut nl, e, &mut outputs_added);
        let delta = nl.take_delta();
        tg.update(&nl, &model, &delta);
    }
    nl.validate().expect("edits preserve structural invariants");

    let fresh = TimingGraph::from_scratch(&nl, &model).expect("still acyclic");
    let dev = tg
        .deviation_from_scratch(&nl, &model)
        .expect("still acyclic");
    // Default tolerance: the criticality eps every consumer works with.
    prop_assert!(
        dev <= fresh.eps().max(TIGHT_EPS),
        "deviation {dev} exceeds eps {}",
        fresh.eps()
    );
    // Tightened tolerance: cutoff 0.0 propagation is exact.
    prop_assert!(dev <= TIGHT_EPS, "deviation {dev} exceeds {TIGHT_EPS}");
    prop_assert!((tg.circuit_delay() - fresh.circuit_delay()).abs() <= TIGHT_EPS);
    prop_assert!((tg.worst_slack() - fresh.worst_slack()).abs() <= TIGHT_EPS);
    for s in nl.signals() {
        prop_assert!(
            (tg.arrival(s) - fresh.arrival(s)).abs() <= TIGHT_EPS,
            "arrival({s}) drifted"
        );
        let (r, fr) = (tg.required(s), fresh.required(s));
        prop_assert!(
            (r - fr).abs() <= TIGHT_EPS || (r == fr),
            "required({s}) drifted: {r} vs {fr}"
        );
        let (sl, fsl) = (tg.slack(s), fresh.slack(s));
        prop_assert!(
            (sl - fsl).abs() <= TIGHT_EPS || (sl == fsl),
            "slack({s}) drifted: {sl} vs {fsl}"
        );
    }
    Ok(())
}

/// A generated random netlist: a small seed interface grown by the same
/// insertion machinery the property exercises, so depth and fanout vary
/// per case.
fn random_netlist(grow: &[Edit]) -> Netlist {
    let mut nl = Netlist::new("random");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let c = nl.add_input("c");
    let d = nl.add_input("d");
    let g1 = nl.add_gate(GateKind::And, &[a, b]).unwrap();
    let g2 = nl.add_gate(GateKind::Xor, &[g1, c]).unwrap();
    let g3 = nl.add_gate(GateKind::Nor, &[g2, d]).unwrap();
    nl.add_output("y", g3);
    let mut outputs_added = 1usize;
    for e in grow {
        if let Edit::InsertGate { .. } = e {
            apply_edit(&mut nl, e, &mut outputs_added);
        }
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random netlist, random edit sequence: incremental == full.
    #[test]
    fn incremental_matches_full_on_random_netlists(
        grow in proptest::collection::vec(edit_strategy(), 8..32),
        edits in proptest::collection::vec(edit_strategy(), 1..24),
    ) {
        check_incremental_matches_full(random_netlist(&grow), &edits)?;
    }
}

proptest! {
    // dp96 is the benchmark workload; a from-scratch cross-check per
    // case is a full STA of the whole datapath, so fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The dp96 benchmark workload under random edit sequences.
    #[test]
    fn incremental_matches_full_on_dp96(
        edits in proptest::collection::vec(edit_strategy(), 1..16),
    ) {
        check_incremental_matches_full(datapath(96), &edits)?;
    }
}

/// A non-zero cutoff trades exactness for earlier worklist termination;
/// the accumulated deviation must stay bounded and a forced
/// [`TimingGraph::rebuild`] must restore exactness.
#[test]
fn cutoff_bounds_deviation_and_rebuild_restores_exactness() {
    let model = UnitDelay;
    let mut nl = datapath(8);
    let cutoff = 1e-6;
    let mut tg = TimingGraph::from_scratch(&nl, &model)
        .expect("acyclic")
        .with_cutoff(cutoff);
    nl.record_edits();
    let gates: Vec<SignalId> = nl.gates().collect();
    let mut outputs_added = 0usize;
    for (i, &g) in gates.iter().enumerate().take(24) {
        let e = Edit::InsertGate {
            kind: i as u8,
            fanins: vec![g.index(), i],
        };
        apply_edit(&mut nl, &e, &mut outputs_added);
        let delta = nl.take_delta();
        tg.update(&nl, &model, &delta);
    }
    let dev = tg.deviation_from_scratch(&nl, &model).expect("acyclic");
    assert!(dev.is_finite());
    // Unit delays are integers, so any deviation a 1e-6 cutoff can leave
    // behind is far below one gate delay.
    assert!(dev <= 1e-3, "cutoff deviation {dev} out of bounds");
    tg.rebuild(&nl, &model).expect("acyclic");
    let dev = tg.deviation_from_scratch(&nl, &model).expect("acyclic");
    assert!(dev == 0.0, "rebuild must restore exactness, got {dev}");
}
