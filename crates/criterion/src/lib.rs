//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter` / `iter_batched`, `BatchSize`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros —
//! as a plain wall-clock harness: per benchmark it runs one warm-up
//! iteration plus `sample_size` timed samples and prints mean / min /
//! max. No statistical regression machinery, no HTML reports.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; only a hint upstream, ignored here
/// (every iteration re-runs setup untimed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.sample_size.unwrap_or(self._criterion.sample_size);
        run_one(&format!("{}/{}", self.name, id.into()), samples, &mut f);
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for us).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        samples,
        collected: Vec::with_capacity(samples),
    };
    f(&mut b);
    let n = b.collected.len().max(1);
    let total: Duration = b.collected.iter().sum();
    let mean = total / n as u32;
    let min = b.collected.iter().min().copied().unwrap_or_default();
    let max = b.collected.iter().max().copied().unwrap_or_default();
    println!("{id:<55} mean {mean:>12.3?}   min {min:>12.3?}   max {max:>12.3?}   ({n} samples)");
}

/// The per-benchmark timing hook.
pub struct Bencher {
    samples: usize,
    collected: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples (plus one
    /// untimed warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            self.collected.push(t.elapsed());
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is not
    /// counted.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.collected.push(t.elapsed());
        }
    }
}

/// Declares a benchmark group function, in either criterion syntax.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. --bench); ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        c.bench_function("shim/noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("shim/group");
        group.sample_size(3);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = target
    );

    criterion_group!(short_form, target);

    #[test]
    fn groups_run_to_completion() {
        benches();
        short_form();
    }
}
