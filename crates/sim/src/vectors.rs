use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A packed set of primary-input vectors for bit-parallel simulation.
///
/// Vector `v` is stored across bit `v % 64` of word `v / 64` of every
/// input's word row; simulating one word row evaluates 64 vectors at once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VectorSet {
    n_inputs: usize,
    n_words: usize,
    words: Vec<u64>,
}

impl VectorSet {
    /// Generates `n_vectors` uniformly random vectors (rounded up to a
    /// multiple of 64) from a fixed seed, so runs are reproducible.
    ///
    /// # Example
    ///
    /// ```
    /// let v = sim::VectorSet::random(10, 256, 42);
    /// assert_eq!(v.n_inputs(), 10);
    /// assert_eq!(v.n_words(), 4);
    /// assert_eq!(v, sim::VectorSet::random(10, 256, 42));
    /// ```
    #[must_use]
    pub fn random(n_inputs: usize, n_vectors: usize, seed: u64) -> Self {
        let n_words = n_vectors.div_ceil(64).max(1);
        let mut rng = StdRng::seed_from_u64(seed);
        let words = (0..n_inputs * n_words).map(|_| rng.gen()).collect();
        VectorSet {
            n_inputs,
            n_words,
            words,
        }
    }

    /// Generates the complete input space of an `n_inputs`-input circuit.
    /// Clause survival under exhaustive simulation is proof of validity
    /// (Definition 1 quantifies over all input vectors).
    ///
    /// # Panics
    ///
    /// Panics if `n_inputs > 24` (the vector count would be excessive).
    #[must_use]
    pub fn exhaustive(n_inputs: usize) -> Self {
        assert!(n_inputs <= 24, "exhaustive vectors limited to 24 inputs");
        let n_vectors = 1usize << n_inputs;
        let n_words = n_vectors.div_ceil(64);
        let mut words = vec![0u64; n_inputs * n_words];
        for i in 0..n_inputs {
            for w in 0..n_words {
                words[i * n_words + w] = if i < 6 {
                    // Repeating pattern within every word.
                    let block = 1u64 << i;
                    let mut word = 0u64;
                    let mut bit = 0;
                    while bit < 64 {
                        if (bit >> i) & 1 == 1 {
                            word |= ((1u64 << block) - 1).wrapping_shl(bit as u32);
                        }
                        bit += block as usize;
                    }
                    word
                } else {
                    // Whole words alternate.
                    if (w >> (i - 6)) & 1 == 1 {
                        !0
                    } else {
                        0
                    }
                };
            }
        }
        VectorSet {
            n_inputs,
            n_words,
            words,
        }
    }

    /// Builds a one-word set whose vector 0 is the given assignment (the
    /// remaining 63 lanes replicate it). Useful for replaying a single
    /// witness vector, e.g. a SAT counterexample, through the simulator.
    #[must_use]
    pub fn from_single(assignment: &[bool]) -> Self {
        let words = assignment
            .iter()
            .map(|&b| if b { !0u64 } else { 0 })
            .collect();
        VectorSet {
            n_inputs: assignment.len(),
            n_words: 1,
            words,
        }
    }

    /// Number of primary inputs the set was built for.
    #[must_use]
    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    /// Number of 64-vector words per input.
    #[must_use]
    pub fn n_words(&self) -> usize {
        self.n_words
    }

    /// Number of vectors (always a multiple of 64).
    #[must_use]
    pub fn n_vectors(&self) -> usize {
        self.n_words * 64
    }

    /// The word row of input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_inputs`.
    #[must_use]
    pub fn input_words(&self, i: usize) -> &[u64] {
        &self.words[i * self.n_words..(i + 1) * self.n_words]
    }

    /// The value of input `i` in vector `v`.
    #[must_use]
    pub fn bit(&self, i: usize, v: usize) -> bool {
        self.input_words(i)[v / 64] >> (v % 64) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustive_enumerates_all_assignments() {
        let v = VectorSet::exhaustive(8);
        assert_eq!(v.n_vectors(), 256);
        let mut seen = vec![false; 256];
        for vec_idx in 0..256 {
            let mut val = 0usize;
            for i in 0..8 {
                if v.bit(i, vec_idx) {
                    val |= 1 << i;
                }
            }
            seen[val] = true;
        }
        assert!(seen.iter().all(|&b| b), "some assignment missing");
    }

    #[test]
    fn exhaustive_small_fits_one_word() {
        let v = VectorSet::exhaustive(3);
        assert_eq!(v.n_words(), 1);
        // Low 8 bits enumerate 000..111; input 0 toggles fastest.
        assert_eq!(v.input_words(0)[0] & 0xff, 0b10101010);
        assert_eq!(v.input_words(1)[0] & 0xff, 0b11001100);
        assert_eq!(v.input_words(2)[0] & 0xff, 0b11110000);
    }

    #[test]
    fn random_is_reproducible_and_seed_sensitive() {
        let a = VectorSet::random(5, 128, 7);
        let b = VectorSet::random(5, 128, 7);
        let c = VectorSet::random(5, 128, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_rounds_up_to_word() {
        let v = VectorSet::random(3, 1, 0);
        assert_eq!(v.n_words(), 1);
        assert_eq!(v.n_vectors(), 64);
    }

    #[test]
    fn from_single_replays_a_witness() {
        let v = VectorSet::from_single(&[true, false, true]);
        assert_eq!(v.n_inputs(), 3);
        assert_eq!(v.n_words(), 1);
        for lane in [0usize, 17, 63] {
            assert!(v.bit(0, lane));
            assert!(!v.bit(1, lane));
            assert!(v.bit(2, lane));
        }
    }

    #[test]
    fn zero_input_circuit_supported() {
        let v = VectorSet::random(0, 64, 0);
        assert_eq!(v.n_inputs(), 0);
        assert_eq!(v.n_words(), 1);
    }
}
