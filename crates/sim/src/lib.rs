//! Bit-parallel logic simulation and observability computation.
//!
//! This is the engine behind the paper's clause invalidation (Section 4):
//! `l` input vectors are simulated in parallel, one per bit of a machine
//! word, in the style of Waicukauski et al.'s bit-parallel fault simulator
//! \[16\]. On top of plain good-value simulation, the
//! [`ObservabilityEngine`] computes, for every simulated vector, whether a
//! signal is *observable* — whether flipping it would change at least one
//! primary output. A clause `(!O_a + l_1 + ... + l_k)` is invalidated by
//! any vector where `a` is observable and every literal evaluates to 0.
//!
//! # Example
//!
//! ```
//! use netlist::{Netlist, GateKind};
//! use sim::{simulate, VectorSet, ObservabilityEngine};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut nl = Netlist::new("t");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let g = nl.add_gate(GateKind::And, &[a, b])?;
//! nl.add_output("y", g);
//!
//! let vectors = VectorSet::exhaustive(2);
//! let sim = simulate(&nl, &vectors)?;
//! let mut obs = ObservabilityEngine::new(&nl, &sim)?;
//! // Input a of an AND gate is observable exactly when b = 1.
//! assert_eq!(obs.observability(a)[0] & 0b1111, sim.value(b)[0] & 0b1111);
//! # Ok(())
//! # }
//! ```

mod engine;
mod vectors;

pub use engine::{simulate, ObsPlan, ObsStats, ObservabilityEngine, SimResult};
pub use vectors::VectorSet;
