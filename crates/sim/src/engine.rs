use crate::VectorSet;
use netlist::{Branch, Fanout, GateKind, Netlist, NetlistError, SignalId};
use std::sync::Arc;

/// Good-value simulation result: one word row per signal slot.
#[derive(Debug, Clone)]
pub struct SimResult {
    n_words: usize,
    values: Vec<u64>,
}

impl SimResult {
    /// Number of 64-vector words per signal.
    #[must_use]
    pub fn n_words(&self) -> usize {
        self.n_words
    }

    /// The word row of signal `s`.
    #[must_use]
    pub fn value(&self, s: SignalId) -> &[u64] {
        &self.values[s.index() * self.n_words..(s.index() + 1) * self.n_words]
    }

    /// The value of signal `s` in vector `v`.
    #[must_use]
    pub fn bit(&self, s: SignalId, v: usize) -> bool {
        self.value(s)[v / 64] >> (v % 64) & 1 == 1
    }
}

/// Simulates all vectors through the netlist, bit-parallel.
///
/// # Errors
///
/// [`NetlistError::CycleDetected`] if `nl` is not a DAG.
///
/// # Panics
///
/// Panics if `vectors.n_inputs()` differs from the netlist's input count.
pub fn simulate(nl: &Netlist, vectors: &VectorSet) -> Result<SimResult, NetlistError> {
    assert_eq!(
        vectors.n_inputs(),
        nl.inputs().len(),
        "vector set built for a different input count"
    );
    telemetry::counter_add("sim.simulations", 1);
    telemetry::counter_add("sim.vectors", vectors.n_vectors() as u64);
    let n_words = vectors.n_words();
    let order = nl.topo_order()?;
    let mut values = vec![0u64; nl.capacity() * n_words];
    for (i, &pi) in nl.inputs().iter().enumerate() {
        values[pi.index() * n_words..(pi.index() + 1) * n_words]
            .copy_from_slice(vectors.input_words(i));
    }
    let mut fanin_buf: Vec<u64> = Vec::new();
    for &s in &order {
        let kind = nl.kind(s);
        match kind {
            GateKind::Input => {}
            GateKind::Const0 => values[s.index() * n_words..(s.index() + 1) * n_words].fill(0),
            GateKind::Const1 => values[s.index() * n_words..(s.index() + 1) * n_words].fill(!0),
            _ => {
                let fanins = nl.fanins(s).to_vec();
                for w in 0..n_words {
                    fanin_buf.clear();
                    fanin_buf.extend(fanins.iter().map(|f| values[f.index() * n_words + w]));
                    values[s.index() * n_words + w] = kind.eval_words(&fanin_buf);
                }
            }
        }
    }
    Ok(SimResult { n_words, values })
}

/// Shared levelization of a netlist for observability queries: the
/// topological order plus each signal's topological level.
///
/// Building the plan walks the whole netlist once; every
/// [`ObservabilityEngine`] query then touches only the seed's fanout
/// cone, evaluated in level order. One plan can back many engines (e.g.
/// one engine per worker thread over the same netlist/simulation), so
/// the levelization cost is paid once per simulation round rather than
/// once per engine.
#[derive(Debug)]
pub struct ObsPlan {
    topo: Vec<SignalId>,
    level: Vec<u32>,
}

impl ObsPlan {
    /// Levelizes `nl`.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if `nl` is not a DAG.
    pub fn new(nl: &Netlist) -> Result<Self, NetlistError> {
        let topo = nl.topo_order()?;
        let mut level = vec![0u32; nl.capacity()];
        for &s in &topo {
            let l = nl
                .fanins(s)
                .iter()
                .map(|f| level[f.index()] + 1)
                .max()
                .unwrap_or(0);
            level[s.index()] = l;
        }
        Ok(ObsPlan { topo, level })
    }

    /// The topological level of `s` (inputs and constants are level 0).
    #[must_use]
    pub fn level(&self, s: SignalId) -> u32 {
        self.level[s.index()]
    }
}

/// Query statistics of one [`ObservabilityEngine`].
///
/// Plain integers bumped inside the query path — the engine carries no
/// telemetry probes in its hot loops; callers (the BPFS fan-out) read
/// these per worker and record aggregates at round boundaries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObsStats {
    /// Observability queries answered (stem + branch).
    pub queries: u64,
    /// Cone gates re-simulated across all queries.
    pub cone_gates: u64,
}

impl ObsStats {
    /// Component-wise sum, for merging per-worker tallies.
    #[must_use]
    pub fn merged(&self, other: &ObsStats) -> ObsStats {
        ObsStats {
            queries: self.queries + other.queries,
            cone_gates: self.cone_gates + other.cone_gates,
        }
    }
}

/// Per-vector observability computation by single-fault cone resimulation.
///
/// For a signal `a`, bit `v` of the observability row is 1 iff flipping
/// `a` under vector `v` changes at least one primary output — i.e. iff a
/// fault on `a` is observable, matching the paper's `O_a` variable.
///
/// The engine reuses internal buffers across queries; create it once per
/// simulation round and query many signals. Queries resimulate only the
/// seed's transitive fanout cone in level order ([`ObsPlan`]), so the
/// cost of a query is proportional to the cone, not the netlist. The
/// result is bit-identical to a full-netlist walk: gate evaluation only
/// requires fanins before fanouts, which any topological order — global
/// or cone-local — provides.
#[derive(Debug)]
pub struct ObservabilityEngine<'a> {
    nl: &'a Netlist,
    sim: &'a SimResult,
    plan: Arc<ObsPlan>,
    /// Evaluate the whole topological order per query instead of the
    /// cone. Same results, kept for baseline benchmarking.
    full_walk: bool,
    /// Alternative values for cone members, stamped per query.
    alt: Vec<u64>,
    stamp: Vec<u32>,
    current: u32,
    obs: Vec<u64>,
    /// Cone scratch, reused across queries.
    cone: Vec<SignalId>,
    stats: ObsStats,
}

impl<'a> ObservabilityEngine<'a> {
    /// Prepares an engine for the given netlist and simulation snapshot.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if `nl` is not a DAG.
    pub fn new(nl: &'a Netlist, sim: &'a SimResult) -> Result<Self, NetlistError> {
        Ok(Self::with_plan(nl, sim, Arc::new(ObsPlan::new(nl)?)))
    }

    /// Prepares an engine reusing an existing levelization of `nl`.
    ///
    /// # Panics
    ///
    /// Downstream queries misbehave if `plan` was built for a different
    /// netlist; debug builds assert the capacity matches.
    #[must_use]
    pub fn with_plan(nl: &'a Netlist, sim: &'a SimResult, plan: Arc<ObsPlan>) -> Self {
        debug_assert_eq!(plan.level.len(), nl.capacity(), "plan from another netlist");
        ObservabilityEngine {
            nl,
            sim,
            plan,
            full_walk: false,
            alt: vec![0; nl.capacity() * sim.n_words()],
            stamp: vec![0; nl.capacity()],
            current: 0,
            obs: vec![0; sim.n_words()],
            cone: Vec::new(),
            stats: ObsStats::default(),
        }
    }

    /// Cumulative query statistics of this engine.
    #[must_use]
    pub fn stats(&self) -> ObsStats {
        self.stats
    }

    /// Prepares an engine that resimulates the whole netlist per query
    /// (the pre-levelization behaviour). Only useful as a benchmark
    /// baseline against the cone-local default.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if `nl` is not a DAG.
    pub fn new_full_walk(nl: &'a Netlist, sim: &'a SimResult) -> Result<Self, NetlistError> {
        let mut engine = Self::new(nl, sim)?;
        engine.full_walk = true;
        Ok(engine)
    }

    /// Computes the observability word row of stem signal `a`: bit `v` is
    /// set iff flipping `a` under vector `v` changes some primary output.
    ///
    /// The returned slice is valid until the next call.
    pub fn observability(&mut self, a: SignalId) -> &[u64] {
        let nw = self.sim.n_words();
        self.current += 1;
        let stamp = self.current;
        self.obs.fill(0);

        // Seed: the flipped value of `a` itself.
        self.stamp[a.index()] = stamp;
        for w in 0..nw {
            self.alt[a.index() * nw + w] = !self.sim.value(a)[w];
        }
        self.propagate_and_compare(a, stamp)
    }

    /// Computes the observability of a single *branch*: only the given
    /// gate input sees the flipped value. This is the `O_a'` of the
    /// paper's input substitutions, which differs from stem observability
    /// under reconvergent fanout.
    ///
    /// # Panics
    ///
    /// Panics if the branch does not identify a live connection.
    pub fn observability_branch(&mut self, branch: Branch) -> &[u64] {
        let nw = self.sim.n_words();
        self.current += 1;
        let stamp = self.current;
        self.obs.fill(0);

        let c = branch.cell;
        let src = self
            .nl
            .branch_source(branch)
            .expect("branch must reference a live connection");
        // Seed: re-evaluate the consuming gate with the pin inverted.
        let kind = self.nl.kind(c);
        self.stamp[c.index()] = stamp;
        let mut fanin_buf: Vec<u64> = Vec::with_capacity(4);
        for w in 0..nw {
            fanin_buf.clear();
            for (pin, &f) in self.nl.fanins(c).iter().enumerate() {
                let mut v = self.sim.value(f)[w];
                if pin == branch.pin as usize {
                    v = !v;
                }
                fanin_buf.push(v);
            }
            self.alt[c.index() * nw + w] = kind.eval_words(&fanin_buf);
        }
        let _ = src;
        self.propagate_and_compare(c, stamp)
    }

    /// Shared tail of the observability computations: marks the fanout
    /// cone of `seed`, resimulates it against the seeded `alt` values and
    /// ORs the primary-output differences into `obs`.
    fn propagate_and_compare(&mut self, seed: SignalId, stamp: u32) -> &[u64] {
        let nw = self.sim.n_words();
        self.stats.queries += 1;
        // Mark the transitive fanout cone.
        let mut in_cone = std::mem::take(&mut self.cone);
        in_cone.clear();
        in_cone.push(seed);
        let mut i = 0;
        while i < in_cone.len() {
            let s = in_cone[i];
            i += 1;
            for fo in self.nl.fanouts(s) {
                if let Fanout::Gate { cell, .. } = *fo {
                    if self.stamp[cell.index()] != stamp {
                        self.stamp[cell.index()] = stamp;
                        in_cone.push(cell);
                    }
                }
            }
        }
        // Resimulate the cone against the seeded `alt` values. Any
        // topological order of the cone works; level order is one. The
        // legacy mode walks the global order instead, skipping non-cone
        // signals — identical results, O(netlist) per query.
        let mut fanin_buf: Vec<u64> = Vec::with_capacity(4);
        let plan = Arc::clone(&self.plan);
        if self.full_walk {
            for &s in &plan.topo {
                if self.stamp[s.index()] == stamp && s != seed {
                    self.eval_into_alt(s, stamp, nw, &mut fanin_buf);
                }
            }
        } else {
            in_cone.sort_unstable_by_key(|&s| plan.level[s.index()]);
            for &s in &in_cone {
                if s != seed {
                    self.eval_into_alt(s, stamp, nw, &mut fanin_buf);
                }
            }
        }
        self.stats.cone_gates += (in_cone.len() - 1) as u64;
        self.cone = in_cone;
        // Compare primary outputs.
        for po in self.nl.outputs() {
            let d = po.driver();
            if self.stamp[d.index()] == stamp {
                for w in 0..nw {
                    self.obs[w] |= self.alt[d.index() * nw + w] ^ self.sim.value(d)[w];
                }
            }
        }
        &self.obs
    }

    /// Evaluates gate `s` against `alt` values of stamped fanins (and
    /// good values of everything else), storing the result in `alt`.
    fn eval_into_alt(&mut self, s: SignalId, stamp: u32, nw: usize, fanin_buf: &mut Vec<u64>) {
        let kind = self.nl.kind(s);
        for w in 0..nw {
            fanin_buf.clear();
            for &f in self.nl.fanins(s) {
                let v = if self.stamp[f.index()] == stamp {
                    self.alt[f.index() * nw + w]
                } else {
                    self.sim.value(f)[w]
                };
                fanin_buf.push(v);
            }
            self.alt[s.index() * nw + w] = kind.eval_words(fanin_buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> (Netlist, [SignalId; 6]) {
        // d = AND(a,b); e = NOT(c); f = OR(d,e)
        let mut nl = Netlist::new("fig1");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let e = nl.add_gate(GateKind::Not, &[c]).unwrap();
        let f = nl.add_gate(GateKind::Or, &[d, e]).unwrap();
        nl.add_output("f", f);
        (nl, [a, b, c, d, e, f])
    }

    #[test]
    fn simulation_matches_scalar_eval() {
        let (nl, _) = fig1();
        let vectors = VectorSet::exhaustive(3);
        let sim = simulate(&nl, &vectors).unwrap();
        for v in 0..8 {
            let ins: Vec<bool> = (0..3).map(|i| vectors.bit(i, v)).collect();
            let scalar = nl.eval(&ins).unwrap();
            for s in nl.signals() {
                if nl.kind(s) == GateKind::Input {
                    continue;
                }
                assert_eq!(sim.bit(s, v), scalar[s.index()], "signal {s} vector {v}");
            }
        }
    }

    #[test]
    fn observability_matches_definition() {
        let (nl, sigs) = fig1();
        let vectors = VectorSet::exhaustive(3);
        let sim = simulate(&nl, &vectors).unwrap();
        let mut engine = ObservabilityEngine::new(&nl, &sim).unwrap();
        for s in sigs {
            let obs = engine.observability(s)[0];
            for v in 0..8usize {
                let ins: Vec<bool> = (0..3).map(|i| vectors.bit(i, v)).collect();
                let base = nl.eval_outputs(&ins).unwrap();
                // Brute-force flip: recompute with s forced to its
                // complement by rebuilding values manually.
                let flipped = eval_with_flip(&nl, &ins, s);
                let expect = base != flipped;
                assert_eq!(obs >> v & 1 == 1, expect, "signal {s} vector {v}");
            }
        }
    }

    /// Evaluates the netlist with signal `flip` forced to its complement.
    fn eval_with_flip(nl: &Netlist, inputs: &[bool], flip: SignalId) -> Vec<bool> {
        let order = nl.topo_order().unwrap();
        let mut values = vec![false; nl.capacity()];
        for (i, &pi) in nl.inputs().iter().enumerate() {
            values[pi.index()] = inputs[i];
        }
        for &s in &order {
            let kind = nl.kind(s);
            if kind != GateKind::Input {
                let ins: Vec<bool> = nl.fanins(s).iter().map(|f| values[f.index()]).collect();
                values[s.index()] = kind.eval(&ins);
            }
            if s == flip {
                values[s.index()] = !values[s.index()];
            }
        }
        nl.outputs()
            .iter()
            .map(|po| values[po.driver().index()])
            .collect()
    }

    #[test]
    fn and_input_observability_is_side_input() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        nl.add_output("y", g);
        let vectors = VectorSet::exhaustive(2);
        let sim = simulate(&nl, &vectors).unwrap();
        let mut engine = ObservabilityEngine::new(&nl, &sim).unwrap();
        let mask = 0b1111u64;
        assert_eq!(engine.observability(a)[0] & mask, sim.value(b)[0] & mask);
        assert_eq!(engine.observability(b)[0] & mask, sim.value(a)[0] & mask);
        // The gate output itself is always observable (drives the PO).
        assert_eq!(engine.observability(g)[0] & mask, mask);
    }

    #[test]
    fn unobservable_signal() {
        // Signal blocked by a constant-0 AND leg is never observable.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let zero = nl.const0();
        let g = nl.add_gate(GateKind::And, &[a, zero]).unwrap();
        nl.add_output("y", g);
        let vectors = VectorSet::exhaustive(1);
        let sim = simulate(&nl, &vectors).unwrap();
        let mut engine = ObservabilityEngine::new(&nl, &sim).unwrap();
        assert_eq!(engine.observability(a)[0] & 0b11, 0);
    }

    #[test]
    fn reconvergent_fanout_handled() {
        // y = XOR(a, a) == 0; a is unobservable because both paths cancel.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b1 = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        let b2 = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        let g = nl.add_gate(GateKind::Xor, &[b1, b2]).unwrap();
        nl.add_output("y", g);
        let vectors = VectorSet::exhaustive(1);
        let sim = simulate(&nl, &vectors).unwrap();
        let mut engine = ObservabilityEngine::new(&nl, &sim).unwrap();
        // Flipping a flips both XOR legs: output unchanged.
        assert_eq!(engine.observability(a)[0] & 0b11, 0);
        // Flipping just one buffer output is observable.
        assert_eq!(engine.observability(b1)[0] & 0b11, 0b11);
    }

    #[test]
    fn branch_observability_differs_from_stem() {
        // y = XOR(a, a): the stem is never observable (flips cancel), but
        // each individual branch is always observable.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Xor, &[a, a]).unwrap();
        nl.add_output("y", g);
        let vectors = VectorSet::exhaustive(1);
        let sim = simulate(&nl, &vectors).unwrap();
        let mut engine = ObservabilityEngine::new(&nl, &sim).unwrap();
        assert_eq!(engine.observability(a)[0] & 0b11, 0);
        let b0 = engine.observability_branch(Branch { cell: g, pin: 0 })[0];
        let b1 = engine.observability_branch(Branch { cell: g, pin: 1 })[0];
        assert_eq!(b0 & 0b11, 0b11);
        assert_eq!(b1 & 0b11, 0b11);
    }

    #[test]
    fn branch_observability_of_and_side_input() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        nl.add_output("y", g);
        let vectors = VectorSet::exhaustive(2);
        let sim = simulate(&nl, &vectors).unwrap();
        let mut engine = ObservabilityEngine::new(&nl, &sim).unwrap();
        // For a single-fanout signal, branch and stem observability agree.
        let stem = engine.observability(a)[0] & 0b1111;
        let br = engine.observability_branch(Branch { cell: g, pin: 0 })[0] & 0b1111;
        assert_eq!(stem, br);
    }

    #[test]
    fn cone_local_matches_full_walk() {
        // A reconvergent multi-output circuit exercising stem and branch
        // queries: cone-local evaluation must be bit-identical to the
        // full-topological-walk baseline for every signal.
        let mut nl = Netlist::new("t");
        let ins: Vec<SignalId> = (0..6).map(|i| nl.add_input(format!("x{i}"))).collect();
        let g1 = nl.add_gate(GateKind::And, &[ins[0], ins[1]]).unwrap();
        let g2 = nl.add_gate(GateKind::Or, &[g1, ins[2]]).unwrap();
        let g3 = nl.add_gate(GateKind::Xor, &[g1, ins[3]]).unwrap();
        let g4 = nl.add_gate(GateKind::Nand, &[g2, g3]).unwrap();
        let g5 = nl.add_gate(GateKind::Nor, &[g4, ins[4]]).unwrap();
        let g6 = nl.add_gate(GateKind::And, &[g2, ins[5]]).unwrap();
        nl.add_output("y1", g5);
        nl.add_output("y2", g6);
        let vectors = VectorSet::random(6, 256, 7);
        let sim = simulate(&nl, &vectors).unwrap();
        let mut cone = ObservabilityEngine::new(&nl, &sim).unwrap();
        let mut full = ObservabilityEngine::new_full_walk(&nl, &sim).unwrap();
        for s in nl.signals() {
            assert_eq!(
                cone.observability(s),
                full.observability(s),
                "stem {s} differs"
            );
        }
        for g in [g1, g2, g3, g4, g5, g6] {
            for pin in 0..nl.fanins(g).len() {
                let br = Branch {
                    cell: g,
                    pin: pin as u32,
                };
                assert_eq!(
                    cone.observability_branch(br).to_vec(),
                    full.observability_branch(br).to_vec(),
                    "branch {g}/{pin} differs"
                );
            }
        }
    }

    #[test]
    fn shared_plan_across_engines() {
        let (nl, sigs) = fig1();
        let vectors = VectorSet::random(3, 128, 5);
        let sim = simulate(&nl, &vectors).unwrap();
        let plan = std::sync::Arc::new(ObsPlan::new(&nl).unwrap());
        let mut own = ObservabilityEngine::new(&nl, &sim).unwrap();
        let mut shared = ObservabilityEngine::with_plan(&nl, &sim, plan);
        for s in sigs {
            assert_eq!(own.observability(s), shared.observability(s));
        }
    }

    #[test]
    fn multiple_queries_reuse_buffers() {
        let (nl, sigs) = fig1();
        let vectors = VectorSet::random(3, 128, 1);
        let sim = simulate(&nl, &vectors).unwrap();
        let mut engine = ObservabilityEngine::new(&nl, &sim).unwrap();
        let first: Vec<u64> = engine.observability(sigs[0]).to_vec();
        let _second = engine.observability(sigs[1]);
        let again: Vec<u64> = engine.observability(sigs[0]).to_vec();
        assert_eq!(first, again);
    }
}
