//! Implementation of the `gdo-opt` command-line driver: argument parsing,
//! the read → map → optimize → write pipeline, and reporting. Split into
//! a library so the pipeline is unit-testable without spawning processes.

use gdo::{
    Budget, EngineId, GdoConfig, GdoStats, OptimizeRequest, Pipeline, ProverKind, VerifyPolicy,
};
use library::{parse_genlib, standard_library, Library, MapGoal, Mapper};
use netlist::Netlist;
use std::fmt;
use std::path::{Path, PathBuf};
use timing::{LibDelay, TimingGraph};

/// Errors surfaced to the command line.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad flags or arguments.
    Usage(String),
    /// File IO failed.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Input netlist or library failed to parse.
    Parse(String),
    /// The optimized netlist cannot be expressed in the requested
    /// output format.
    Write(String),
    /// The optimizer failed (internal invariant — should not happen on
    /// valid inputs).
    Optimize(gdo::GdoError),
    /// Post-optimization verification refuted equivalence (would indicate
    /// a soundness bug; the run aborts loudly).
    VerificationFailed,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            CliError::Parse(m) => write!(f, "{m}"),
            CliError::Write(m) => write!(f, "{m}"),
            CliError::Optimize(e) => write!(f, "optimization failed: {e}"),
            CliError::VerificationFailed => {
                write!(f, "verification failed: output is not equivalent to input")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Maps a pipeline error to the documented process exit code:
/// `2` usage/config, `3` parse or invalid netlist, `5` file IO,
/// `6` unwritable output, `1` internal optimizer/verification failures.
/// (Exit `0` covers success *and* budget exhaustion with a valid output;
/// exit `4` — degraded result after a verification rollback — is decided
/// by the caller from [`RunOutcome`], not from an error.)
#[must_use]
pub fn exit_code(e: &CliError) -> i32 {
    match e {
        CliError::Usage(_) => 2,
        CliError::Parse(_) => 3,
        CliError::Io { .. } => 5,
        CliError::Write(_) => 6,
        _ => 1,
    }
}

/// What a successful [`run`] produced, for exit-code and scripting
/// decisions.
#[derive(Debug, Clone, Copy)]
pub struct RunOutcome {
    /// The optimizer's statistics (budget and verification outcomes
    /// included).
    pub stats: GdoStats,
}

impl RunOutcome {
    /// True when a checkpoint verification failed and the run fell back
    /// to an earlier netlist — the output is correct but possibly less
    /// optimized than requested (exit code 4 unless `--allow-degraded`).
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.stats.verify_rollbacks > 0
    }
}

/// The netlist file formats the driver reads and writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// ISCAS `.bench`.
    Bench,
    /// Berkeley BLIF.
    Blif,
    /// Structural Verilog (write-only).
    Verilog,
}

impl Format {
    /// Guesses the format from a file extension.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] for unknown extensions.
    pub fn from_path(path: &Path) -> Result<Format, CliError> {
        match path.extension().and_then(|e| e.to_str()) {
            Some("bench") => Ok(Format::Bench),
            Some("blif") => Ok(Format::Blif),
            Some("v") => Ok(Format::Verilog),
            other => Err(CliError::Usage(format!(
                "cannot infer format from extension {other:?} (use .bench, .blif or .v)"
            ))),
        }
    }
}

/// Parsed command-line options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Input netlist path.
    pub input: PathBuf,
    /// Optional output path.
    pub output: Option<PathBuf>,
    /// Optional genlib library path (embedded library when absent).
    pub library: Option<PathBuf>,
    /// Mapping objective.
    pub map_goal: MapGoal,
    /// Skip mapping (input already mapped / treat gates as cells).
    pub no_map: bool,
    /// Optimizer configuration.
    pub cfg: GdoConfig,
    /// Write the output as mapped BLIF (`.gate` lines) instead of
    /// generic `.names` BLIF.
    pub mapped_output: bool,
    /// Verify input/output equivalence with a SAT miter at the end.
    pub verify: bool,
    /// Required arrival time at every primary output; reports MET or
    /// VIOLATED with the worst slack after optimization.
    pub require: Option<f64>,
    /// Print the detailed statistics block.
    pub stats: bool,
    /// Suppress the normal summary.
    pub quiet: bool,
    /// Stream telemetry events as NDJSON to this file.
    pub trace_out: Option<PathBuf>,
    /// Write the aggregated telemetry [`telemetry::RunReport`] as JSON.
    pub report_json: Option<PathBuf>,
    /// Pretty-print telemetry events to stderr as they happen.
    pub verbose: bool,
    /// Treat a verification rollback as an acceptable (exit 0) outcome
    /// instead of the degraded-result exit code 4.
    pub allow_degraded: bool,
    /// Engine pipeline run over the netlist, in order (default GDO
    /// alone).
    pub engines: Vec<EngineId>,
    /// Partitioned optimization: cluster into roughly this many regions
    /// and optimize them on a worker pool (`0` = whole-netlist run).
    pub partitions: usize,
    /// Explicit region size cap (gates) for partitioned runs; implies
    /// partitioning even with `partitions == 0`.
    pub region_size: Option<usize>,
    /// Write crash-safe run snapshots to this path (atomic temp-file +
    /// rename; resumable with `--resume-from`).
    pub checkpoint_out: Option<PathBuf>,
    /// Snapshot cadence: engine-iteration boundaries for whole-netlist
    /// runs, finished regions for partitioned runs (default 1).
    pub checkpoint_every: usize,
    /// Resume from a snapshot written by a previous `--checkpoint-out`
    /// run. The input file and optimizer flags must match the original
    /// run (digest-checked); explicit budget flags override the
    /// snapshot's recorded remainders.
    pub resume_from: Option<PathBuf>,
}

impl Options {
    /// Parses CLI arguments. Returns `Ok(None)` when `--help` was asked.
    ///
    /// # Errors
    ///
    /// [`CliError::Usage`] on malformed flags.
    pub fn parse(args: &[String]) -> Result<Option<Options>, CliError> {
        let mut input: Option<PathBuf> = None;
        let mut cfg = GdoConfig::builder();
        let mut out = Options {
            input: PathBuf::new(),
            output: None,
            library: None,
            map_goal: MapGoal::Area,
            no_map: false,
            cfg: GdoConfig::default(),
            mapped_output: false,
            verify: false,
            require: None,
            stats: false,
            quiet: false,
            trace_out: None,
            report_json: None,
            verbose: false,
            allow_degraded: false,
            engines: vec![EngineId::Gdo],
            partitions: 0,
            region_size: None,
            checkpoint_out: None,
            checkpoint_every: 1,
            resume_from: None,
        };
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut need = |what: &str| -> Result<String, CliError> {
                it.next()
                    .cloned()
                    .ok_or_else(|| CliError::Usage(format!("{what} needs a value")))
            };
            match a.as_str() {
                "--help" | "-h" => {
                    println!("{}", usage());
                    return Ok(None);
                }
                "--list-circuits" => {
                    println!("{:<8} {:>8} {:>6} {:>6}", "name", "gates", "pis", "pos");
                    for name in workloads::circuit_names() {
                        let nl = workloads::lookup_circuit(name)
                            .expect("listed names resolve")
                            .build();
                        let s = nl.stats();
                        println!("{name:<8} {:>8} {:>6} {:>6}", s.gates, s.inputs, s.outputs);
                    }
                    return Ok(None);
                }
                "-o" | "--output" => out.output = Some(PathBuf::from(need("--output")?)),
                "-l" | "--library" => out.library = Some(PathBuf::from(need("--library")?)),
                "--map-goal" => {
                    out.map_goal = match need("--map-goal")?.as_str() {
                        "area" => MapGoal::Area,
                        "delay" => MapGoal::Delay,
                        other => {
                            return Err(CliError::Usage(format!(
                                "--map-goal must be area or delay, got {other:?}"
                            )))
                        }
                    }
                }
                "--no-map" => out.no_map = true,
                "--no-os3" => cfg = cfg.enable_sub3(false),
                "--no-xor-direct" => cfg = cfg.xor_direct(false),
                "--no-area-phase" => cfg = cfg.area_phase(false),
                "--vectors" => {
                    cfg = cfg.vectors(
                        need("--vectors")?
                            .parse()
                            .map_err(|_| CliError::Usage("--vectors needs an integer".into()))?,
                    );
                }
                "--seed" => {
                    cfg = cfg.seed(
                        need("--seed")?
                            .parse()
                            .map_err(|_| CliError::Usage("--seed needs an integer".into()))?,
                    );
                }
                "--threads" => {
                    cfg = cfg.threads(
                        need("--threads")?
                            .parse()
                            .map_err(|_| CliError::Usage("--threads needs an integer".into()))?,
                    );
                }
                "--prover" => {
                    cfg = cfg.prover(match need("--prover")?.as_str() {
                        "sat" => ProverKind::SatClause,
                        "bdd" => ProverKind::BddEquiv {
                            node_limit: 1 << 22,
                        },
                        "miter" => ProverKind::SatEquiv,
                        other => {
                            return Err(CliError::Usage(format!(
                                "--prover must be sat, bdd or miter, got {other:?}"
                            )))
                        }
                    });
                }
                "--engine" => {
                    out.engines = EngineId::parse_list(&need("--engine")?)
                        .map_err(|e| CliError::Usage(e.to_string()))?;
                }
                "--mapped-output" => out.mapped_output = true,
                "--require" => {
                    out.require = Some(
                        need("--require")?
                            .parse()
                            .map_err(|_| CliError::Usage("--require needs a number".into()))?,
                    );
                }
                "--time-budget-ms" => {
                    let ms: u64 = need("--time-budget-ms")?
                        .parse()
                        .map_err(|_| CliError::Usage("--time-budget-ms needs an integer".into()))?;
                    cfg = cfg.deadline(std::time::Duration::from_millis(ms));
                }
                "--work-limit" => {
                    cfg =
                        cfg.work_limit(need("--work-limit")?.parse().map_err(|_| {
                            CliError::Usage("--work-limit needs an integer".into())
                        })?);
                }
                "--verify" => {
                    out.verify = true;
                    cfg = cfg.verify_policy(VerifyPolicy::Final);
                }
                "--verify-each" => cfg = cfg.verify_policy(VerifyPolicy::EachSubstitution),
                "--verify-every" => {
                    cfg = cfg.verify_policy(VerifyPolicy::EveryN(
                        need("--verify-every")?.parse().map_err(|_| {
                            CliError::Usage("--verify-every needs an integer".into())
                        })?,
                    ));
                }
                "--partitions" => {
                    out.partitions = need("--partitions")?
                        .parse()
                        .map_err(|_| CliError::Usage("--partitions needs an integer".into()))?;
                }
                "--region-size" => {
                    let size: usize = need("--region-size")?
                        .parse()
                        .map_err(|_| CliError::Usage("--region-size needs an integer".into()))?;
                    if size == 0 {
                        return Err(CliError::Usage("--region-size must be positive".into()));
                    }
                    out.region_size = Some(size);
                }
                "--checkpoint-out" => {
                    out.checkpoint_out = Some(PathBuf::from(need("--checkpoint-out")?));
                }
                "--checkpoint-every" => {
                    let every: usize = need("--checkpoint-every")?.parse().map_err(|_| {
                        CliError::Usage("--checkpoint-every needs an integer".into())
                    })?;
                    if every == 0 {
                        return Err(CliError::Usage(
                            "--checkpoint-every must be positive".into(),
                        ));
                    }
                    out.checkpoint_every = every;
                }
                "--resume-from" => {
                    out.resume_from = Some(PathBuf::from(need("--resume-from")?));
                }
                "--allow-degraded" => out.allow_degraded = true,
                "--stats" => out.stats = true,
                "--trace-out" => out.trace_out = Some(PathBuf::from(need("--trace-out")?)),
                "--report-json" => out.report_json = Some(PathBuf::from(need("--report-json")?)),
                "-v" | "--verbose" => out.verbose = true,
                "-q" | "--quiet" => out.quiet = true,
                flag if flag.starts_with('-') => {
                    return Err(CliError::Usage(format!("unknown flag {flag:?}")))
                }
                positional => {
                    if input.replace(PathBuf::from(positional)).is_some() {
                        return Err(CliError::Usage("more than one input file".into()));
                    }
                }
            }
        }
        out.cfg = cfg.build().map_err(|e| CliError::Usage(e.to_string()))?;
        match input {
            Some(i) => {
                out.input = i;
                Ok(Some(out))
            }
            None => Err(CliError::Usage("missing input netlist".into())),
        }
    }
}

/// The `--help` text.
#[must_use]
pub fn usage() -> &'static str {
    "gdo-opt — delay optimization of mapped netlists by logic clause analysis\n\
     \n\
     usage: gdo-opt [OPTIONS] <INPUT.bench|INPUT.blif>\n\
     \n\
     -o, --output FILE        write the optimized netlist (.bench or .blif)\n\
     -l, --library FILE       genlib library (default: embedded gdo-std)\n\
     --map-goal area|delay    technology-mapping objective (default area)\n\
     --no-map                 skip mapping (input treated as mapped)\n\
     --no-os3                 disable inserted-gate (OS3/IS3) substitutions\n\
     --no-xor-direct          skip direct XOR/XNOR triple enumeration\n\
     --no-area-phase          skip the area-recovery phase\n\
     --vectors N              BPFS vectors per round (default 512)\n\
     --seed N                 BPFS seed (default 1995)\n\
     --threads N              BPFS worker threads (default 0 = all cores)\n\
     --prover sat|bdd|miter   validity prover (default sat)\n\
     --engine LIST            engine pipeline, comma-separated: gdo, resub\n\
                              (default gdo; e.g. --engine gdo,resub)\n\
     --mapped-output          write .gate (mapped) BLIF\n\
     --require T              report MET/VIOLATED for output required time T\n\
     --time-budget-ms N       wall-clock budget; past it the run unwinds and\n\
                              keeps the best netlist found so far (exit 0)\n\
     --work-limit N           deterministic work-unit ceiling (same unwinding)\n\
     --verify                 SAT-verify end-to-end equivalence afterwards\n\
                              (also re-proves the final checkpoint in-run)\n\
     --verify-each            re-prove equivalence after every substitution,\n\
                              rolling back and quarantining on failure\n\
     --verify-every N         like --verify-each, every N substitutions\n\
     --allow-degraded         exit 0 even when a verification rollback fired\n\
     --partitions N           cluster into ~N regions and optimize them on a\n\
                              worker pool (0 = whole-netlist run; default 0)\n\
     --region-size S          cap partitioned regions at S gates (implies\n\
                              partitioning)\n\
     --checkpoint-out FILE    write crash-safe run snapshots to FILE (atomic\n\
                              temp-file + rename; also written on budget\n\
                              exhaustion or cancel)\n\
     --checkpoint-every N     snapshot cadence: every N engine iterations\n\
                              (whole-netlist) or finished regions\n\
                              (partitioned); default 1\n\
     --resume-from FILE       resume an interrupted run from FILE; input and\n\
                              flags must match the original run, and explicit\n\
                              budget flags override the snapshot remainders\n\
     --list-circuits          print the workload suite (name, gates, PIs, POs)\n\
     --stats                  print detailed statistics\n\
     --trace-out FILE         stream telemetry events as NDJSON to FILE\n\
     --report-json FILE       write the aggregated telemetry report as JSON\n\
     -v, --verbose            pretty-print telemetry events to stderr\n\
     -q, --quiet              only errors"
}

/// Reads a netlist in either format.
///
/// # Errors
///
/// [`CliError::Io`] / [`CliError::Parse`].
pub fn read_netlist(path: &Path) -> Result<Netlist, CliError> {
    let format = Format::from_path(path)?;
    let text = std::fs::read_to_string(path).map_err(|source| CliError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    match format {
        Format::Bench => formats::parse_bench(&text).map_err(|e| CliError::Parse(e.to_string())),
        Format::Blif => formats::parse_blif(&text).map_err(|e| CliError::Parse(e.to_string())),
        Format::Verilog => Err(CliError::Usage(
            "verilog is write-only; provide .bench or .blif input".into(),
        )),
    }
}

/// Writes a netlist in the format implied by the path.
///
/// # Errors
///
/// [`CliError::Io`] / [`CliError::Usage`] / [`CliError::Write`].
pub fn write_netlist(path: &Path, nl: &Netlist) -> Result<(), CliError> {
    let format = Format::from_path(path)?;
    let to_write = |e: formats::FormatError| CliError::Write(e.to_string());
    let text = match format {
        Format::Bench => formats::write_bench(nl).map_err(to_write)?,
        Format::Blif => formats::write_blif(nl).map_err(to_write)?,
        Format::Verilog => formats::write_verilog(nl),
    };
    std::fs::write(path, text).map_err(|source| CliError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Loads the genlib library (embedded default when `path` is `None`).
///
/// # Errors
///
/// [`CliError::Io`] / [`CliError::Parse`].
pub fn load_library(path: Option<&Path>) -> Result<Library, CliError> {
    match path {
        None => Ok(standard_library()),
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|source| CliError::Io {
                path: p.to_path_buf(),
                source,
            })?;
            parse_genlib(
                p.file_stem().and_then(|s| s.to_str()).unwrap_or("user"),
                &text,
            )
            .map_err(|e| CliError::Parse(e.to_string()))
        }
    }
}

/// The full pipeline behind `gdo-opt`.
///
/// BLIF inputs containing `.gate` lines are parsed as *mapped* netlists
/// against the library and skip the mapping step.
///
/// # Errors
///
/// Any [`CliError`]; see the variants.
pub fn run(options: &Options) -> Result<RunOutcome, CliError> {
    let lib = load_library(options.library.as_deref())?;
    // Sniff mapped BLIF: .gate lines bind cells from the library.
    let mapped_input = Format::from_path(&options.input)? == Format::Blif && {
        let text = std::fs::read_to_string(&options.input).map_err(|source| CliError::Io {
            path: options.input.clone(),
            source,
        })?;
        text.lines().any(|l| l.trim_start().starts_with(".gate"))
    };
    let source = if mapped_input {
        let text = std::fs::read_to_string(&options.input).map_err(|source| CliError::Io {
            path: options.input.clone(),
            source,
        })?;
        library::parse_mapped_blif(&lib, &text).map_err(|e| CliError::Parse(e.to_string()))?
    } else {
        read_netlist(&options.input)?
    };
    // Reject structurally broken inputs (cycles, dangling drivers, …)
    // with their offending signal names before any optimization runs.
    source
        .validate()
        .map_err(|e| CliError::Parse(format!("invalid input netlist: {e}")))?;
    let mut nl = if options.no_map || mapped_input {
        source.clone()
    } else {
        Mapper::new(&lib)
            .goal(options.map_goal)
            .map(&source)
            .map_err(|e| CliError::Parse(format!("mapping failed: {e}")))?
    };

    let model = LibDelay::new(&lib);
    let before = TimingGraph::from_scratch(&nl, &model)
        .map_err(|e| CliError::Parse(format!("timing failed: {e}")))?;
    if !options.quiet {
        println!(
            "in : {} — {} gates, {} literals, delay {:.2}",
            nl.name(),
            nl.stats().gates,
            nl.stats().literals,
            before.circuit_delay()
        );
    }

    let telemetry_on =
        options.verbose || options.trace_out.is_some() || options.report_json.is_some();
    if telemetry_on {
        telemetry::reset();
        if let Some(path) = &options.trace_out {
            let file = std::fs::File::create(path).map_err(|source| CliError::Io {
                path: path.clone(),
                source,
            })?;
            telemetry::install_sink(Box::new(telemetry::NdjsonSink::new(
                std::io::BufWriter::new(file),
            )));
        }
        if options.verbose {
            telemetry::install_sink(Box::new(telemetry::StderrSink));
        }
        telemetry::enable();
    }

    let partitioned = options.partitions > 0 || options.region_size.is_some();
    // Crash-safe snapshots: the cadence spec goes to whichever driver
    // runs; a resume snapshot rebases the *remaining* budget recorded at
    // suspension (the original deadline was absolute and has expired),
    // unless explicit budget flags override it.
    let ckpt_spec = options
        .checkpoint_out
        .as_ref()
        .map(|p| gdo::CheckpointSpec::new(p.clone()).every(options.checkpoint_every));
    let explicit_time_ms = options
        .cfg
        .deadline
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
    let resume_failed = |path: &Path, e: gdo::SnapshotError| {
        telemetry::counter_add("snapshot.rejected", 1);
        CliError::Parse(format!("cannot resume from {}: {e}", path.display()))
    };
    let (stats, pstats) = if partitioned {
        let mut cluster = if options.partitions > 0 {
            partition::ClusterConfig::for_partitions(nl.stats().gates, options.partitions)
        } else {
            partition::ClusterConfig::default()
        };
        if let Some(size) = options.region_size {
            cluster.max_region_size = size;
        }
        cluster.seed = options.cfg.seed;
        let resume = match &options.resume_from {
            Some(path) => {
                Some(partition::PartitionSnapshot::read(path).map_err(|e| resume_failed(path, e))?)
            }
            None => None,
        };
        let budget = match &resume {
            Some(snap) => gdo::snapshot::rebased_budget(
                explicit_time_ms,
                options.cfg.work_limit,
                snap.time_remaining_ms,
                snap.work_remaining,
            ),
            None => gdo::Budget::new(options.cfg.deadline, options.cfg.work_limit),
        };
        let popts = partition::PartitionOptions {
            cluster,
            threads: options.cfg.threads,
            verify_regions: true,
            engines: options.engines.clone(),
            checkpoint: ckpt_spec,
            resume_from: resume,
        };
        let ps = partition::optimize_partitioned(&lib, &options.cfg, &mut nl, &popts, &budget)
            .map_err(|e| match e {
                partition::PartitionError::Gdo(g) => CliError::Optimize(g),
                partition::PartitionError::Netlist(n) => {
                    CliError::Parse(format!("partitioning failed: {n}"))
                }
            })?;
        (ps.gdo, Some(ps))
    } else {
        let resume = match &options.resume_from {
            Some(path) => Some(gdo::RunSnapshot::read(path).map_err(|e| resume_failed(path, e))?),
            None => None,
        };
        let budget = match &resume {
            Some(snap) => gdo::snapshot::rebased_budget(
                explicit_time_ms,
                options.cfg.work_limit,
                snap.time_remaining_ms,
                snap.work_remaining,
            ),
            None => Budget::new(options.cfg.deadline, options.cfg.work_limit),
        };
        let mut req = OptimizeRequest::new(options.cfg.clone()).engines(options.engines.clone());
        if let Some(spec) = ckpt_spec {
            req = req.checkpoint(spec);
        }
        if let Some(snap) = resume {
            req = req.resume_from(snap);
        }
        let s = Pipeline::new(&lib)
            .run(&req, &mut nl, &budget)
            .map_err(CliError::Optimize)?;
        (s, None)
    };

    if telemetry_on {
        // Flushes the NDJSON sink and stops probes; the collected
        // aggregates stay available for the report below.
        telemetry::disable();
    }
    if let Some(path) = &options.report_json {
        let mut report = telemetry::snapshot();
        report.meta.insert("circuit".into(), nl.name().to_string());
        report
            .meta
            .insert("input".into(), options.input.display().to_string());
        match &pstats {
            Some(ps) => ps.merge_into_report(&mut report),
            None => stats.merge_into_report(&mut report),
        }
        std::fs::write(path, report.to_json()).map_err(|source| CliError::Io {
            path: path.clone(),
            source,
        })?;
        if !options.quiet {
            println!("wrote {}", path.display());
        }
    }

    if !options.quiet {
        if let Some(ps) = &pstats {
            println!(
                "partition: {} regions ({} boundary signals), {} rewrites stitched, \
                 {} quarantined, {} skipped",
                ps.regions,
                ps.boundary_signals,
                ps.region_rewrites,
                ps.stitch_conflicts,
                ps.regions_skipped
            );
        }
    }
    if !options.quiet && stats.budget_exhausted {
        println!("note: budget exhausted — kept the best netlist found so far");
    }
    if !options.quiet && stats.verify_rollbacks > 0 {
        println!(
            "note: {} verification rollback(s) — output is correct but degraded",
            stats.verify_rollbacks
        );
    }
    if !options.quiet {
        println!(
            "out: {} — {} gates, {} literals, delay {:.2} ({:+.1}% delay, {:+.1}% literals)",
            nl.name(),
            stats.gates_after,
            stats.literals_after,
            stats.delay_after,
            -100.0 * stats.delay_reduction(),
            -100.0 * stats.literal_reduction(),
        );
    }
    if options.stats {
        println!(
            "     {} OS/IS2 + {} OS/IS3 + {} const mods; {} proofs ({} valid); \
             {} rounds; {:.2}s",
            stats.sub2_mods,
            stats.sub3_mods,
            stats.const_mods,
            stats.proofs,
            stats.proofs_valid,
            stats.rounds,
            stats.cpu_seconds
        );
        if stats.verify_checks > 0 {
            println!(
                "     {} checkpoint verifications ({} failed, {} rollbacks, \
                 {} kinds quarantined)",
                stats.verify_checks,
                stats.verify_failures,
                stats.verify_rollbacks,
                stats.quarantined_kinds
            );
        }
        // The remaining critical path, signal by signal.
        let after = TimingGraph::from_scratch(&nl, &model)
            .map_err(|e| CliError::Parse(format!("timing failed: {e}")))?;
        let path = after.worst_path(&nl);
        let names = nl.unique_names("n");
        println!("     critical path ({} stages):", path.len());
        for s in path {
            let cell = nl
                .cell(s)
                .lib()
                .map(|tag| {
                    lib.cell(library::LibCellId::from_tag(tag))
                        .name()
                        .to_string()
                })
                .unwrap_or_else(|| nl.kind(s).to_string());
            println!(
                "       {:>8.2}  {}  ({})",
                after.arrival(s),
                names[s.index()],
                cell
            );
        }
    }

    if let Some(required) = options.require {
        let tg = TimingGraph::from_scratch_constrained(&nl, &model, None, Some(required))
            .map_err(|e| CliError::Parse(format!("timing failed: {e}")))?;
        let slack = tg.worst_slack();
        if !options.quiet {
            println!(
                "constraint {required}: {} (worst slack {slack:+.2})",
                if slack >= -tg.eps() {
                    "MET"
                } else {
                    "VIOLATED"
                }
            );
        }
    }

    if options.verify {
        let reference = if options.no_map {
            source
        } else {
            // The mapped netlist was already proved against the source by
            // per-rewrite proofs; verify end-to-end against the source.
            source
        };
        if !sat::check_equiv(&reference, &nl)
            .map_err(|e| CliError::Parse(format!("verification setup failed: {e}")))?
        {
            return Err(CliError::VerificationFailed);
        }
        if !options.quiet {
            println!("verified: output equivalent to input");
        }
    }

    if let Some(out) = &options.output {
        if options.mapped_output {
            let text = library::write_mapped_blif(&lib, &nl)
                .map_err(|e| CliError::Parse(e.to_string()))?;
            std::fs::write(out, text).map_err(|source| CliError::Io {
                path: out.clone(),
                source,
            })?;
        } else {
            write_netlist(out, &nl)?;
        }
        if !options.quiet {
            println!("wrote {}", out.display());
        }
    }
    Ok(RunOutcome { stats })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(args: &[&str]) -> Result<Option<Options>, CliError> {
        Options::parse(&args.iter().map(|s| (*s).to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn parses_typical_invocation() {
        let o = opts(&[
            "in.bench",
            "-o",
            "out.blif",
            "--map-goal",
            "delay",
            "--vectors",
            "128",
            "--verify",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(o.input, PathBuf::from("in.bench"));
        assert_eq!(o.output, Some(PathBuf::from("out.blif")));
        assert_eq!(o.map_goal, MapGoal::Delay);
        assert_eq!(o.cfg.vectors, 128);
        assert!(o.verify);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(matches!(opts(&["--frob"]), Err(CliError::Usage(_))));
        assert!(matches!(opts(&[]), Err(CliError::Usage(_))));
        assert!(matches!(
            opts(&["a.bench", "b.bench"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            opts(&["a.bench", "--map-goal", "fast"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn invalid_config_is_a_usage_error() {
        // The validating builder runs at parse time: impossible budgets
        // are reported as usage errors, not as late optimizer failures.
        match opts(&["a.bench", "--vectors", "0"]) {
            Err(CliError::Usage(msg)) => assert!(msg.contains("vectors"), "{msg}"),
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn help_short_circuits() {
        assert!(opts(&["--help"]).unwrap().is_none());
    }

    #[test]
    fn list_circuits_short_circuits() {
        // Like --help: prints (the suite names) and asks the caller to
        // exit successfully without running the pipeline.
        assert!(opts(&["--list-circuits"]).unwrap().is_none());
    }

    #[test]
    fn parses_engine_lists_and_rejects_unknown_engines() {
        let o = opts(&["in.bench", "--engine", "gdo,resub"])
            .unwrap()
            .unwrap();
        assert_eq!(o.engines, vec![EngineId::Gdo, EngineId::Resub]);
        let o = opts(&["in.bench"]).unwrap().unwrap();
        assert_eq!(o.engines, vec![EngineId::Gdo]);
        match opts(&["in.bench", "--engine", "gdo,frob"]) {
            Err(CliError::Usage(msg)) => {
                assert!(msg.contains("valid engines"), "{msg}");
                assert!(msg.contains("resub"), "{msg}");
            }
            other => panic!("expected usage error, got {other:?}"),
        }
    }

    #[test]
    fn parses_budget_and_verify_flags() {
        let o = opts(&[
            "in.bench",
            "--time-budget-ms",
            "250",
            "--work-limit",
            "1000",
            "--verify-every",
            "8",
            "--allow-degraded",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(o.cfg.deadline, Some(std::time::Duration::from_millis(250)));
        assert_eq!(o.cfg.work_limit, Some(1000));
        assert_eq!(o.cfg.verify_policy, VerifyPolicy::EveryN(8));
        assert!(o.allow_degraded);

        let o = opts(&["in.bench", "--verify-each"]).unwrap().unwrap();
        assert_eq!(o.cfg.verify_policy, VerifyPolicy::EachSubstitution);
        assert!(
            !o.verify,
            "--verify-each alone must not imply the end check"
        );

        // --verify both requests the end-to-end miter and a final
        // checkpoint verification.
        let o = opts(&["in.bench", "--verify"]).unwrap().unwrap();
        assert!(o.verify);
        assert_eq!(o.cfg.verify_policy, VerifyPolicy::Final);
    }

    #[test]
    fn parses_partition_flags() {
        let o = opts(&["in.bench", "--partitions", "8", "--region-size", "512"])
            .unwrap()
            .unwrap();
        assert_eq!(o.partitions, 8);
        assert_eq!(o.region_size, Some(512));

        let o = opts(&["in.bench"]).unwrap().unwrap();
        assert_eq!(o.partitions, 0, "whole-netlist run by default");
        assert_eq!(o.region_size, None);

        assert!(matches!(
            opts(&["a.bench", "--partitions", "many"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            opts(&["a.bench", "--region-size", "0"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn parses_checkpoint_flags() {
        let o = opts(&[
            "in.bench",
            "--checkpoint-out",
            "run.ckpt",
            "--checkpoint-every",
            "4",
            "--resume-from",
            "old.ckpt",
        ])
        .unwrap()
        .unwrap();
        assert_eq!(o.checkpoint_out, Some(PathBuf::from("run.ckpt")));
        assert_eq!(o.checkpoint_every, 4);
        assert_eq!(o.resume_from, Some(PathBuf::from("old.ckpt")));

        let o = opts(&["in.bench"]).unwrap().unwrap();
        assert_eq!(o.checkpoint_out, None);
        assert_eq!(o.checkpoint_every, 1);
        assert_eq!(o.resume_from, None);

        assert!(matches!(
            opts(&["a.bench", "--checkpoint-every", "0"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            opts(&["a.bench", "--checkpoint-out"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn budget_flags_reject_garbage() {
        assert!(matches!(
            opts(&["a.bench", "--time-budget-ms", "soon"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            opts(&["a.bench", "--work-limit", "-3"]),
            Err(CliError::Usage(_))
        ));
        // EveryN(0) is rejected by the validating config builder.
        assert!(matches!(
            opts(&["a.bench", "--verify-every", "0"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn exit_codes_match_the_documented_table() {
        assert_eq!(exit_code(&CliError::Usage(String::new())), 2);
        assert_eq!(exit_code(&CliError::Parse(String::new())), 3);
        assert_eq!(
            exit_code(&CliError::Io {
                path: PathBuf::from("x"),
                source: std::io::Error::other("x"),
            }),
            5
        );
        assert_eq!(exit_code(&CliError::Write(String::new())), 6);
        assert_eq!(exit_code(&CliError::VerificationFailed), 1);
    }

    #[test]
    fn format_detection() {
        assert_eq!(
            Format::from_path(Path::new("x.bench")).unwrap(),
            Format::Bench
        );
        assert_eq!(
            Format::from_path(Path::new("x.blif")).unwrap(),
            Format::Blif
        );
        assert_eq!(
            Format::from_path(Path::new("x.v")).unwrap(),
            Format::Verilog
        );
        assert!(Format::from_path(Path::new("x.vhdl")).is_err());
    }

    #[test]
    fn pipeline_end_to_end_via_files() {
        let dir = std::env::temp_dir().join(format!("gdo_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.bench");
        let output = dir.join("out.blif");
        let nl = workloads::sym_detector(5, 1, 3);
        let subject = library::to_subject_graph(&nl).unwrap();
        std::fs::write(&input, formats::write_bench(&subject).unwrap()).unwrap();

        let o = Options {
            input: input.clone(),
            output: Some(output.clone()),
            library: None,
            map_goal: MapGoal::Area,
            no_map: false,
            cfg: GdoConfig::default(),
            mapped_output: false,
            verify: true,
            require: None,
            stats: false,
            quiet: true,
            trace_out: None,
            report_json: None,
            verbose: false,
            allow_degraded: false,
            engines: vec![EngineId::Gdo],
            partitions: 0,
            region_size: None,
            checkpoint_out: None,
            checkpoint_every: 1,
            resume_from: None,
        };
        run(&o).unwrap();
        let written = read_netlist(&output).unwrap();
        assert!(sat::check_equiv(&subject, &written).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partitioned_pipeline_end_to_end() {
        let dir = std::env::temp_dir().join(format!("gdo_cli_part_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.bench");
        let output = dir.join("out.blif");
        let report = dir.join("report.json");
        let nl = workloads::datapath(8);
        let subject = library::to_subject_graph(&nl).unwrap();
        std::fs::write(&input, formats::write_bench(&subject).unwrap()).unwrap();

        let o = Options {
            input: input.clone(),
            output: Some(output.clone()),
            library: None,
            map_goal: MapGoal::Area,
            no_map: false,
            cfg: GdoConfig::default(),
            mapped_output: false,
            verify: true,
            require: None,
            stats: false,
            quiet: true,
            trace_out: None,
            report_json: Some(report.clone()),
            verbose: false,
            allow_degraded: false,
            engines: vec![EngineId::Gdo],
            partitions: 4,
            region_size: None,
            checkpoint_out: None,
            checkpoint_every: 1,
            resume_from: None,
        };
        run(&o).unwrap();
        let written = read_netlist(&output).unwrap();
        assert!(sat::check_equiv(&subject, &written).unwrap());
        let json = std::fs::read_to_string(&report).unwrap();
        assert!(json.contains("partition.regions"), "{json}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn mapped_blif_input_and_output() {
        let dir = std::env::temp_dir().join(format!("gdo_cli_mapped_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("in.blif");
        let output = dir.join("out.blif");
        // A mapped netlist, written as .gate BLIF.
        let lib = standard_library();
        let nl = workloads::datapath(3);
        let mapped = Mapper::new(&lib).goal(MapGoal::Area).map(&nl).unwrap();
        std::fs::write(&input, library::write_mapped_blif(&lib, &mapped).unwrap()).unwrap();

        let o = Options {
            input: input.clone(),
            output: Some(output.clone()),
            library: None,
            map_goal: MapGoal::Area,
            no_map: false, // mapped input is auto-detected
            cfg: GdoConfig::default(),
            mapped_output: true,
            verify: true,
            require: None,
            stats: false,
            quiet: true,
            trace_out: None,
            report_json: None,
            verbose: false,
            allow_degraded: false,
            engines: vec![EngineId::Gdo],
            partitions: 0,
            region_size: None,
            checkpoint_out: None,
            checkpoint_every: 1,
            resume_from: None,
        };
        run(&o).unwrap();
        let text = std::fs::read_to_string(&output).unwrap();
        assert!(text.contains(".gate"), "output should be mapped BLIF");
        let back = library::parse_mapped_blif(&lib, &text).unwrap();
        assert!(sat::check_equiv(&mapped, &back).unwrap());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_reports_io_error() {
        let o = Options {
            input: PathBuf::from("/nonexistent/x.bench"),
            output: None,
            library: None,
            map_goal: MapGoal::Area,
            no_map: false,
            cfg: GdoConfig::default(),
            mapped_output: false,
            verify: false,
            require: None,
            stats: false,
            quiet: true,
            trace_out: None,
            report_json: None,
            verbose: false,
            allow_degraded: false,
            engines: vec![EngineId::Gdo],
            partitions: 0,
            region_size: None,
            checkpoint_out: None,
            checkpoint_every: 1,
            resume_from: None,
        };
        assert!(matches!(run(&o), Err(CliError::Io { .. })));
    }
}
