//! `gdo-opt` — the command-line front end of the GDO delay optimizer.
//!
//! ```text
//! gdo-opt [OPTIONS] <INPUT>
//!
//! INPUT                      .bench or .blif netlist (by extension)
//!   -o, --output FILE        write the optimized netlist (.bench or .blif)
//!   -l, --library FILE       genlib library (default: embedded gdo-std)
//!       --map-goal area|delay  technology-mapping objective (default: area)
//!       --no-map             input is already mapped; skip mapping
//!       --no-os3             disable OS3/IS3 (inserted-gate) substitutions
//!       --no-area-phase      skip the area optimization phase
//!       --vectors N          BPFS random vectors per round (default 512)
//!       --seed N             BPFS seed (default 1995)
//!       --prover sat|bdd|miter   validity prover (default sat)
//!       --verify             SAT-verify in/out equivalence at the end
//!       --stats              print the full statistics block
//!       --trace-out FILE     stream telemetry events as NDJSON to FILE
//!       --report-json FILE   write the aggregated telemetry report as JSON
//!   -v, --verbose            pretty-print telemetry events to stderr
//!   -q, --quiet              only errors
//! ```

use cli::{run, CliError, Options};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match Options::parse(&args) {
        Ok(Some(o)) => o,
        Ok(None) => return, // --help
        Err(e) => {
            eprintln!("gdo-opt: {e}");
            eprintln!("try gdo-opt --help");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&options) {
        eprintln!("gdo-opt: {e}");
        std::process::exit(match e {
            CliError::Usage(_) => 2,
            _ => 1,
        });
    }
}
