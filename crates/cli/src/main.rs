//! `gdo-opt` — the command-line front end of the GDO delay optimizer.
//!
//! ```text
//! gdo-opt [OPTIONS] <INPUT>
//!
//! INPUT                      .bench or .blif netlist (by extension)
//!   -o, --output FILE        write the optimized netlist (.bench or .blif)
//!   -l, --library FILE       genlib library (default: embedded gdo-std)
//!       --map-goal area|delay  technology-mapping objective (default: area)
//!       --no-map             input is already mapped; skip mapping
//!       --no-os3             disable OS3/IS3 (inserted-gate) substitutions
//!       --no-area-phase      skip the area optimization phase
//!       --vectors N          BPFS random vectors per round (default 512)
//!       --seed N             BPFS seed (default 1995)
//!       --prover sat|bdd|miter   validity prover (default sat)
//!       --time-budget-ms N   wall-clock budget; best-so-far result on expiry
//!       --work-limit N       cap on optimizer work units (proofs/sites)
//!       --verify             SAT-verify in/out equivalence at the end
//!       --verify-each        re-prove equivalence after every substitution
//!       --verify-every N     re-prove equivalence every N substitutions
//!       --allow-degraded     exit 0 even after a verification rollback
//!       --partitions N       cluster into ~N regions, optimize in parallel
//!       --region-size S      cap partitioned regions at S gates
//!       --list-circuits      print the workload suite and exit
//!       --stats              print the full statistics block
//!       --trace-out FILE     stream telemetry events as NDJSON to FILE
//!       --report-json FILE   write the aggregated telemetry report as JSON
//!   -v, --verbose            pretty-print telemetry events to stderr
//!   -q, --quiet              only errors
//!
//! Exit codes: 0 success (including budget expiry with a valid result),
//! 1 internal error, 2 usage, 3 parse/invalid input, 4 degraded result
//! after a verification rollback (suppressed by --allow-degraded),
//! 5 file IO, 6 unwritable output.
//! ```

use cli::{exit_code, run, Options};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match Options::parse(&args) {
        Ok(Some(o)) => o,
        Ok(None) => return, // --help
        Err(e) => {
            eprintln!("gdo-opt: {e}");
            eprintln!("try gdo-opt --help");
            std::process::exit(2);
        }
    };
    match run(&options) {
        Ok(outcome) => {
            if outcome.degraded() && !options.allow_degraded {
                eprintln!(
                    "gdo-opt: result is valid but degraded ({} verification rollback(s)); \
                     pass --allow-degraded to accept",
                    outcome.stats.verify_rollbacks
                );
                std::process::exit(4);
            }
        }
        Err(e) => {
            eprintln!("gdo-opt: {e}");
            std::process::exit(exit_code(&e));
        }
    }
}
