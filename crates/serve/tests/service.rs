//! End-to-end tests of the serving stack over loopback TCP and in batch
//! mode: admission/backpressure, the 50-job acceptance batch with
//! mid-batch drain, reject policy, cancel-by-id, two-worker determinism,
//! and the aggregate work ceiling.

use serve::{output_from, Admission, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

/// Starts an in-process server on an ephemeral loopback port.
fn start(cfg: ServerConfig) -> (Arc<Server>, std::net::SocketAddr) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Arc::new(Server::new(cfg));
    let serving = Arc::clone(&server);
    std::thread::spawn(move || serving.serve(&listener).unwrap());
    (server, addr)
}

/// One client connection with line-oriented send/receive helpers.
struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        Client {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        assert!(
            self.reader.read_line(&mut line).unwrap() > 0,
            "connection closed early"
        );
        line.trim_end().to_string()
    }

    /// Reads events until `n` terminal events were seen; returns all
    /// lines read (terminal = rejected/done/degraded/failed/cancelled).
    fn recv_until_terminals(&mut self, n: usize) -> Vec<String> {
        let mut lines = Vec::new();
        let mut terminals = 0;
        while terminals < n {
            let line = self.recv();
            if is_terminal(&line) {
                terminals += 1;
            }
            lines.push(line);
        }
        lines
    }
}

fn event_kind(line: &str) -> String {
    serve::json::parse(line)
        .unwrap_or_else(|e| panic!("bad event line {line:?}: {e}"))
        .get("event")
        .and_then(|v| v.as_str().map(str::to_string))
        .unwrap_or_else(|| panic!("event line without kind: {line:?}"))
}

fn is_terminal(line: &str) -> bool {
    matches!(
        event_kind(line).as_str(),
        "rejected" | "done" | "degraded" | "failed" | "cancelled"
    )
}

fn count_kind(lines: &[String], kind: &str) -> usize {
    lines.iter().filter(|l| event_kind(l) == kind).count()
}

/// The acceptance batch: 50 jobs against `--workers 4 --queue-cap 8`.
/// 40 jobs go in under blocking admission (mixed circuits and budgets),
/// a mid-batch drain follows, and 10 late jobs bounce off the closed
/// queue — exactly 50 terminal events, with backpressure observed and
/// every finished job carrying a valid inline report.
#[test]
fn fifty_job_batch_with_backpressure_and_mid_batch_drain() {
    let (_server, addr) = start(ServerConfig {
        workers: 4,
        queue_cap: 8,
        admission: Admission::Block,
        ..ServerConfig::default()
    });
    let mut main = Client::connect(addr);
    for i in 0..40 {
        // Mixed circuits and budgets: most jobs run under a tiny work
        // budget (degraded fast), every fourth runs Z5xp1 to completion.
        if i % 4 == 0 {
            main.send(r#"{"op":"submit","circuit":"Z5xp1","vectors":64,"verify":"off"}"#);
        } else {
            main.send(
                r#"{"op":"submit","circuit":"9sym","vectors":64,"work_limit":3,"verify":"off"}"#,
            );
        }
    }
    // Backpressure must have engaged: 40 blocking submits through a
    // queue of 8 while 4 workers chew on real jobs. Collect every line
    // along the way — terminal events arrive interleaved from here on.
    let mut main_lines: Vec<String> = Vec::new();
    main.send(r#"{"op":"status"}"#);
    let status = loop {
        let line = main.recv();
        let is_status = event_kind(&line) == "status";
        main_lines.push(line.clone());
        if is_status {
            break serve::json::parse(&line).unwrap();
        }
    };
    let blocked = status
        .get("counters")
        .and_then(|c| c.get("blocked_pushes"))
        .and_then(|v| v.as_u64())
        .unwrap();
    assert!(
        blocked > 0,
        "expected blocked admissions, status {status:?}"
    );

    // Connect the late client *before* draining so its handler thread is
    // live regardless of how fast the drain completes.
    let mut late = Client::connect(addr);
    // Mid-batch drain: the server stops admitting but finishes all 40.
    main.send(r#"{"op":"drain"}"#);
    loop {
        let line = main.recv();
        let draining = event_kind(&line) == "draining";
        main_lines.push(line);
        if draining {
            break;
        }
    }
    // 10 late submissions all get rejected: the queue is closed.
    for _ in 0..10 {
        late.send(r#"{"op":"submit","circuit":"Z5xp1"}"#);
    }
    let late_lines = late.recv_until_terminals(10);
    assert_eq!(count_kind(&late_lines, "rejected"), 10, "{late_lines:?}");
    for line in &late_lines {
        assert!(line.contains("draining"), "rejection must say why: {line}");
    }

    // The main connection sees its remaining terminals and the drained
    // marker; across both connections that is exactly 50 terminal events.
    let mut done = false;
    while !done {
        let line = main.recv();
        done = event_kind(&line) == "drained";
        main_lines.push(line);
    }
    let terminal_main: Vec<&String> = main_lines.iter().filter(|l| is_terminal(l)).collect();
    assert_eq!(terminal_main.len(), 40, "all accepted jobs must finish");
    assert_eq!(
        terminal_main.len() + late_lines.iter().filter(|l| is_terminal(l)).count(),
        50
    );
    assert_eq!(count_kind(&main_lines, "accepted"), 40);
    assert!(count_kind(&main_lines, "done") >= 1, "full runs finish");
    assert!(
        count_kind(&main_lines, "degraded") >= 1,
        "tiny budgets degrade"
    );
    assert_eq!(count_kind(&main_lines, "failed"), 0, "{main_lines:?}");

    // Every finished job carries a valid, versioned inline report.
    for line in main_lines
        .iter()
        .filter(|l| matches!(event_kind(l).as_str(), "done" | "degraded"))
    {
        telemetry::validate_json(line).unwrap();
        assert!(line.contains("\"schema\":\"gdo-telemetry/1\""), "{line}");
        assert!(line.contains("\"report\":"), "{line}");
    }
}

/// Under `--admission reject`, a full queue answers `queue full`
/// immediately instead of blocking the submitter.
#[test]
fn reject_admission_reports_queue_full() {
    let (_server, addr) = start(ServerConfig {
        workers: 1,
        queue_cap: 1,
        admission: Admission::Reject,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);
    // Job 1 occupies the single worker well past the next submits (the
    // deadline caps it, so the test still ends promptly).
    c.send(r#"{"op":"submit","circuit":"C880","deadline_ms":1500,"vectors":256,"verify":"off"}"#);
    let first = c.recv();
    assert_eq!(event_kind(&first), "accepted");
    // Wait until the worker picked job 1 up, so the queue slot is free
    // for job 2 and jobs 3..5 deterministically overflow.
    let started = c.recv();
    assert_eq!(event_kind(&started), "started");
    for _ in 0..4 {
        c.send(r#"{"op":"submit","circuit":"Z5xp1","work_limit":1,"verify":"off"}"#);
    }
    c.send(r#"{"op":"drain"}"#);
    let mut lines = Vec::new();
    loop {
        let line = c.recv();
        let kind = event_kind(&line);
        lines.push(line);
        if kind == "drained" {
            break;
        }
    }
    let rejected: Vec<&String> = lines
        .iter()
        .filter(|l| event_kind(l) == "rejected")
        .collect();
    assert!(
        !rejected.is_empty(),
        "expected QueueFull rejections: {lines:?}"
    );
    for line in &rejected {
        assert!(line.contains("queue full"), "{line}");
    }
    // Everything submitted reached a terminal event.
    assert_eq!(
        lines.iter().filter(|l| is_terminal(l)).count(),
        5,
        "{lines:?}"
    );
}

/// Unknown engine names are a protocol-level mistake: rejected at
/// admission with the full list of valid engines, before queueing.
/// Valid engine lists run end to end and are echoed in the report meta.
#[test]
fn engine_lists_are_validated_at_admission() {
    let (_server, addr) = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);
    c.send(r#"{"op":"submit","id":"bad","circuit":"Z5xp1","engines":"gdo,frob"}"#);
    let line = c.recv();
    assert_eq!(event_kind(&line), "rejected", "{line}");
    assert!(line.contains("valid engines"), "{line}");
    assert!(line.contains("resub"), "{line}");

    c.send(
        r#"{"op":"submit","id":"ok","circuit":"Z5xp1","engines":"gdo,resub","vectors":64,"verify":"off"}"#,
    );
    let lines = c.recv_until_terminals(1);
    assert_eq!(count_kind(&lines, "rejected"), 0, "{lines:?}");
    let done = lines.last().unwrap();
    assert!(matches!(event_kind(done).as_str(), "done" | "degraded"));
    assert!(done.contains("\"engines\":\"gdo,resub\""), "{done}");
}

/// Cancel-by-id works both for queued jobs (removed before a worker sees
/// them) and for running jobs (their budget's cancel flag trips).
#[test]
fn cancel_by_id_hits_queued_and_running_jobs() {
    let (_server, addr) = start(ServerConfig {
        workers: 1,
        queue_cap: 4,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);
    // Long-running job on the only worker (the deadline is a test
    // timeout backstop; the cancel should cut it far earlier).
    c.send(
        r#"{"op":"submit","id":"running","circuit":"C880","deadline_ms":30000,"vectors":256,"verify":"off"}"#,
    );
    c.send(r#"{"op":"submit","id":"waiting","circuit":"Z5xp1","verify":"off"}"#);
    // Wait for the first job to actually start.
    loop {
        let line = c.recv();
        if event_kind(&line) == "started" {
            assert!(line.contains("\"id\":\"running\""), "{line}");
            break;
        }
    }
    c.send(r#"{"op":"cancel","id":"waiting"}"#);
    c.send(r#"{"op":"cancel","id":"running"}"#);
    c.send(r#"{"op":"cancel","id":"no-such-job"}"#);
    let mut cancelled = Vec::new();
    let mut errors = Vec::new();
    while cancelled.len() < 2 || errors.is_empty() {
        let line = c.recv();
        match event_kind(&line).as_str() {
            "cancelled" => cancelled.push(line),
            "error" => errors.push(line),
            "done" | "degraded" | "failed" => panic!("job escaped its cancel: {line}"),
            _ => {}
        }
    }
    assert!(errors[0].contains("no-such-job"), "{:?}", errors[0]);
    c.send(r#"{"op":"drain"}"#);
    loop {
        if event_kind(&c.recv()) == "drained" {
            break;
        }
    }
}

/// The same request, submitted twice to a two-worker server, produces
/// byte-identical reports (up to the job id and CPU seconds): per-job
/// seeds and work-unit budgets are deterministic no matter which worker
/// runs the job or in which order.
#[test]
fn two_worker_determinism_yields_identical_reports() {
    let (_server, addr) = start(ServerConfig {
        workers: 2,
        queue_cap: 4,
        ..ServerConfig::default()
    });
    let mut c = Client::connect(addr);
    let submit = |c: &mut Client, id: &str| {
        c.send(&format!(
            r#"{{"op":"submit","id":"{id}","circuit":"9sym","seed":7,"vectors":128,"work_limit":200,"verify":"final"}}"#
        ));
    };
    submit(&mut c, "d1");
    submit(&mut c, "d2");
    c.send(r#"{"op":"drain"}"#);
    let mut reports = Vec::new();
    loop {
        let line = c.recv();
        match event_kind(&line).as_str() {
            "done" | "degraded" => reports.push(extract_report(&line)),
            "failed" | "rejected" | "cancelled" => panic!("unexpected terminal: {line}"),
            "drained" => break,
            _ => {}
        }
    }
    assert_eq!(reports.len(), 2);
    // Completion order is up to the scheduler — scrub by content.
    let a = scrub_nondeterminism(&reports[0]);
    let b = scrub_nondeterminism(&reports[1]);
    assert_eq!(a, b, "reports must be byte-identical after scrubbing");
    // The scrubbed report still carries the deterministic funnel.
    assert!(a.contains("\"seed\":\"7\""), "{a}");
}

/// Pulls the inline `"report":{...}` object out of a done/degraded
/// event line (the report is the last field of the event object).
fn extract_report(line: &str) -> String {
    let at = line.find("\"report\":").expect("event has a report");
    line[at + "\"report\":".len()..line.len() - 1].to_string()
}

/// Removes the two legitimately run-specific fields: the job id in
/// `meta` and the wall-clock `cpu_seconds` in `summary`.
fn scrub_nondeterminism(report: &str) -> String {
    let mut scrubbed = report.to_string();
    for key in ["\"job\":\"", "\"cpu_seconds\":"] {
        let at = scrubbed
            .find(key)
            .unwrap_or_else(|| panic!("report has {key}"));
        let value_from = at + key.len();
        let rest = &scrubbed[value_from..];
        let mut end = rest.find([',', '}']).expect("field value ends");
        if rest[end..].starts_with(',') {
            end += 1;
        }
        scrubbed = format!("{}{}", &scrubbed[..at], &scrubbed[value_from + end..]);
    }
    scrubbed
}

/// A shared growable buffer usable as a batch-mode output sink.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Batch mode processes stdin-style request lines and drains at EOF.
#[test]
fn batch_mode_drains_at_eof() {
    let server = Server::new(ServerConfig {
        workers: 2,
        queue_cap: 4,
        ..ServerConfig::default()
    });
    let buf = SharedBuf::default();
    let out = output_from(buf.clone());
    let input = "\
        {\"op\":\"submit\",\"circuit\":\"Z5xp1\",\"vectors\":64,\"verify\":\"off\"}\n\
        {\"op\":\"submit\",\"circuit\":\"9sym\",\"work_limit\":2,\"verify\":\"off\"}\n\
        not json\n";
    server.run_batch(std::io::Cursor::new(input), &out);
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<String> = text.lines().map(str::to_string).collect();
    assert_eq!(lines.iter().filter(|l| is_terminal(l)).count(), 2, "{text}");
    assert_eq!(count_kind(&lines, "error"), 1, "bad line reported: {text}");
    assert_eq!(
        count_kind(&lines, "drained"),
        1,
        "EOF implies drain: {text}"
    );
    assert_eq!(
        event_kind(lines.last().unwrap()),
        "drained",
        "drained is the final event: {text}"
    );
}

/// Regression: a worker that has popped a job but not yet marked it
/// running is invisible to both the queue depth and the running count,
/// so a drain racing that window used to report `drained` before the
/// job's terminal event. Drain now waits on admission-to-terminal
/// in-flight accounting; hammer the window and check the event order.
#[test]
fn drained_event_never_precedes_a_terminal_event() {
    for round in 0..25 {
        let server = Server::new(ServerConfig {
            workers: 1,
            queue_cap: 4,
            ..ServerConfig::default()
        });
        let buf = SharedBuf::default();
        let out = output_from(buf.clone());
        let input =
            "{\"op\":\"submit\",\"circuit\":\"9sym\",\"work_limit\":1,\"verify\":\"off\"}\n";
        server.run_batch(std::io::Cursor::new(input), &out);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let terminal = lines.iter().position(|l| is_terminal(l));
        let drained = lines.iter().position(|l| event_kind(l) == "drained");
        assert!(
            matches!((terminal, drained), (Some(t), Some(d)) if t < d),
            "round {round}: terminal must precede drained:\n{text}"
        );
        assert_eq!(
            event_kind(lines.last().unwrap()),
            "drained",
            "round {round}: drained is the final event:\n{text}"
        );
    }
}

/// The server-wide work ceiling clamps per-job budgets: once spent,
/// later jobs run with a zero budget and come back degraded.
#[test]
fn aggregate_work_ceiling_degrades_jobs_once_spent() {
    let server = Server::new(ServerConfig {
        workers: 1,
        queue_cap: 4,
        work_ceiling: Some(5),
        ..ServerConfig::default()
    });
    let buf = SharedBuf::default();
    let out = output_from(buf.clone());
    let input = "\
        {\"op\":\"submit\",\"circuit\":\"9sym\",\"vectors\":64,\"verify\":\"off\"}\n\
        {\"op\":\"submit\",\"circuit\":\"Z5xp1\",\"vectors\":64,\"verify\":\"off\"}\n";
    server.run_batch(std::io::Cursor::new(input), &out);
    let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    let lines: Vec<String> = text.lines().map(str::to_string).collect();
    // Both jobs asked for no per-job limit, but the 5-unit ceiling cuts
    // the first and leaves nothing for the second.
    assert_eq!(count_kind(&lines, "degraded"), 2, "{text}");
    assert_eq!(count_kind(&lines, "done"), 0, "{text}");
}
