//! Worker-panic supervision tests (cargo feature `fault-inject`): a
//! submit request can ask the worker to panic N times before running,
//! which exercises catch_unwind, the retry/backoff loop, and the
//! poison-quarantine terminal end to end.

#![cfg(feature = "fault-inject")]

use serve::protocol::{submit_to_json, SubmitRequest};
use serve::{output_from, JobSource, Output, Priority, Server, ServerConfig};
use std::io::Write;
use std::sync::{Arc, Mutex};

#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn lines(&self) -> Vec<String> {
        String::from_utf8(self.0.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn kind(line: &str) -> String {
    serve::json::parse(line)
        .unwrap()
        .get("event")
        .and_then(|v| v.as_str().map(str::to_string))
        .unwrap_or_default()
}

fn submit_panicking(id: &str, panic_attempts: u32) -> String {
    submit_to_json(&SubmitRequest {
        id: Some(id.to_string()),
        source: JobSource::Suite("Z5xp1".to_string()),
        deadline_ms: None,
        work_limit: None,
        seed: Some(7),
        vectors: Some(64),
        verify: None,
        engines: None,
        partitions: None,
        priority: Priority::Normal,
        resume: None,
        checkpoint: None,
        panic_attempts: Some(panic_attempts),
    })
}

fn run_batch(cfg: ServerConfig, requests: &[String]) -> Vec<String> {
    let server = Server::new(cfg);
    let buf = SharedBuf::default();
    let out: Output = output_from(buf.clone());
    let input = requests.join("\n");
    server.run_batch(input.as_bytes(), &out);
    buf.lines()
}

fn cfg(retry_max: u32) -> ServerConfig {
    ServerConfig {
        workers: 1,
        default_verify: gdo::VerifyPolicy::Off,
        retry_max,
        ..ServerConfig::default()
    }
}

#[test]
fn panicking_job_is_retried_and_then_succeeds() {
    // Two injected panics, two retries allowed: attempts 0 and 1 panic,
    // attempt 2 runs to completion. The worker thread survives — the
    // same (single) worker also runs the follow-up job.
    let lines = run_batch(
        cfg(2),
        &[submit_panicking("flaky", 2), submit_panicking("clean", 0)],
    );
    let terminal_of = |id: &str| {
        lines
            .iter()
            .filter(|l| l.contains(&format!("\"id\":\"{id}\"")))
            .map(|l| kind(l))
            .filter(|k| matches!(k.as_str(), "done" | "degraded" | "failed" | "poisoned"))
            .collect::<Vec<_>>()
    };
    assert_eq!(terminal_of("flaky"), ["done"], "{lines:#?}");
    assert_eq!(terminal_of("clean"), ["done"], "{lines:#?}");
}

#[test]
fn exhausted_retries_quarantine_the_job_as_poisoned() {
    // More injected panics than retries: every attempt dies, the job is
    // quarantined with its distinct terminal — and the pool is not
    // poisoned with it, the next job still runs.
    let lines = run_batch(
        cfg(1),
        &[submit_panicking("cursed", 10), submit_panicking("after", 0)],
    );
    let poisoned = lines
        .iter()
        .find(|l| kind(l) == "poisoned")
        .unwrap_or_else(|| panic!("no poisoned terminal: {lines:#?}"));
    assert!(poisoned.contains("\"id\":\"cursed\""), "{poisoned}");
    assert!(poisoned.contains("\"attempts\":2"), "{poisoned}");
    assert!(poisoned.contains("fault-inject"), "{poisoned}");
    assert_eq!(
        lines
            .iter()
            .filter(|l| l.contains("\"id\":\"cursed\"") && kind(l) != "accepted")
            .filter(|l| matches!(kind(l).as_str(), "done" | "poisoned" | "failed"))
            .count(),
        1,
        "exactly one terminal for the poisoned job: {lines:#?}"
    );
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"id\":\"after\"") && kind(l) == "done"),
        "{lines:#?}"
    );
}
