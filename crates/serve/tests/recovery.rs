//! Crash-safety tests of the serving stack: the durable job journal,
//! restart recovery, snapshot-corruption fallback, and the structured
//! `already_finished` answer to cancelling a job that already ended.
//!
//! These run the server in batch mode against an in-memory output, with
//! a journal directory under the system temp dir per test.

use serve::protocol::{submit_to_json, SubmitRequest};
use serve::wal::{self, Wal};
use serve::{output_from, JobSource, Output, Priority, Server, ServerConfig};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A `Write` handle into a shared buffer, so tests can read back the
/// event stream the batch server produced.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn lines(&self) -> Vec<String> {
        String::from_utf8(self.0.lock().unwrap().clone())
            .unwrap()
            .lines()
            .map(str::to_string)
            .collect()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gdo_recovery_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn event_kind(line: &str) -> String {
    serve::json::parse(line)
        .unwrap_or_else(|e| panic!("bad event line {line:?}: {e}"))
        .get("event")
        .and_then(|v| v.as_str().map(str::to_string))
        .unwrap_or_else(|| panic!("event line without kind: {line:?}"))
}

fn event_for<'a>(lines: &'a [String], kind: &str, id: &str) -> Option<&'a String> {
    lines.iter().find(|l| {
        let v = serve::json::parse(l).unwrap();
        v.get("event").and_then(|e| e.as_str()) == Some(kind)
            && v.get("id").and_then(|i| i.as_str()) == Some(id)
    })
}

fn submit_line(id: &str, circuit: &str) -> String {
    submit_to_json(&SubmitRequest {
        id: Some(id.to_string()),
        source: JobSource::Suite(circuit.to_string()),
        deadline_ms: None,
        work_limit: None,
        seed: Some(7),
        vectors: Some(64),
        verify: None,
        engines: None,
        partitions: None,
        priority: Priority::Normal,
        resume: None,
        checkpoint: None,
        want_netlist: false,
        want_progress: false,
        panic_attempts: None,
    })
}

fn run_batch(cfg: ServerConfig, requests: &[String]) -> Vec<String> {
    let server = Server::new(cfg);
    let buf = SharedBuf::default();
    let out: Output = output_from(buf.clone());
    let input = requests.join("\n");
    server.run_batch(input.as_bytes(), &out);
    buf.lines()
}

fn journal_cfg(dir: &Path) -> ServerConfig {
    ServerConfig {
        workers: 2,
        default_verify: gdo::VerifyPolicy::Off,
        journal_dir: Some(dir.to_path_buf()),
        checkpoint_every: 1,
        ..ServerConfig::default()
    }
}

#[test]
fn cancel_after_terminal_answers_already_finished() {
    let server = Server::new(ServerConfig {
        workers: 1,
        default_verify: gdo::VerifyPolicy::Off,
        ..ServerConfig::default()
    });
    let buf = SharedBuf::default();
    let out: Output = output_from(buf.clone());
    server.submit(
        serve::protocol::parse_request(&submit_line("j1", "Z5xp1"))
            .map(|r| match r {
                serve::Request::Submit(s) => *s,
                _ => unreachable!(),
            })
            .unwrap(),
        &out,
    );
    // Wait until the job's terminal event lands.
    while !buf.lines().iter().any(|l| event_kind(l) == "done") {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    // The race fix: cancelling now answers with a structured
    // already_finished (outcome carried), not an error and not a second
    // terminal event.
    server.cancel("j1", &out);
    // A genuinely unknown id still errors.
    server.cancel("never-submitted", &out);
    let lines = buf.lines();
    let af = event_for(&lines, "already_finished", "j1").expect("already_finished event");
    assert!(af.contains("\"outcome\":\"done\""), "{af}");
    assert_eq!(
        lines.iter().filter(|l| event_kind(l) == "done").count(),
        1,
        "exactly one terminal for j1: {lines:#?}"
    );
    assert_eq!(
        lines.iter().filter(|l| event_kind(l) == "error").count(),
        1,
        "unknown id still errors: {lines:#?}"
    );
    let drain_out: Output = output_from(SharedBuf::default());
    server.drain(&drain_out);
    server.join_workers();
}

#[test]
fn clean_run_journals_exactly_one_terminal_per_job() {
    let dir = tmp_dir("clean");
    let lines = run_batch(
        journal_cfg(&dir),
        &[submit_line("a", "Z5xp1"), submit_line("b", "9sym")],
    );
    assert!(event_for(&lines, "done", "a").is_some(), "{lines:#?}");
    assert!(event_for(&lines, "done", "b").is_some(), "{lines:#?}");

    let replay = wal::replay(&dir).unwrap();
    assert!(replay.unfinished.is_empty(), "nothing left to recover");
    let mut finished: Vec<&str> = replay.finished.iter().map(|(id, _)| id.as_str()).collect();
    finished.sort_unstable();
    assert_eq!(finished, ["a", "b"]);
    assert!(replay.finished.iter().all(|(_, o)| o == "done"));

    // A restart against the drained journal recovers nothing.
    let server = Server::new(journal_cfg(&dir));
    let out: Output = output_from(SharedBuf::default());
    server.drain(&out);
    server.join_workers();
    assert!(!dir.join("recovered.ndjson").exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_recovers_journaled_but_unfinished_jobs() {
    let dir = tmp_dir("restart");
    // Simulate a crashed predecessor: the journal holds two accepted
    // jobs, one of which reached its terminal, one did not.
    {
        let wal = Wal::open(&dir).unwrap();
        wal.append_job("job-1", &submit_line("job-1", "Z5xp1"));
        wal.append_job("job-2", &submit_line("job-2", "9sym"));
        wal.append_terminal("job-1", "done");
    }

    // The restarted server re-enqueues job-2 and runs it to a terminal;
    // its events land in recovered.ndjson.
    let lines = run_batch(journal_cfg(&dir), &[]);
    assert!(lines.iter().all(|l| event_kind(l) != "done"), "{lines:#?}");
    let recovered = std::fs::read_to_string(dir.join("recovered.ndjson")).unwrap();
    let rec_lines: Vec<String> = recovered.lines().map(str::to_string).collect();
    assert!(
        event_for(&rec_lines, "done", "job-2").is_some(),
        "{rec_lines:#?}"
    );
    assert!(
        event_for(&rec_lines, "started", "job-1").is_none(),
        "finished jobs must not be re-run: {rec_lines:#?}"
    );

    // After recovery the journal shows exactly one terminal per job, and
    // a second restart finds nothing to do.
    let replay = wal::replay(&dir).unwrap();
    assert!(replay.unfinished.is_empty(), "journal fully settled");
    let mut finished: Vec<&str> = replay.finished.iter().map(|(id, _)| id.as_str()).collect();
    finished.sort_unstable();
    assert_eq!(finished, ["job-1", "job-2"]);
    // Server-assigned ids restart above the journaled numeric suffixes.
    let server = Server::new(journal_cfg(&dir));
    let buf = SharedBuf::default();
    let out: Output = output_from(buf.clone());
    let mut fresh = serve::protocol::parse_request(&submit_line("x", "Z5xp1")).unwrap();
    if let serve::Request::Submit(s) = &mut fresh {
        s.id = None;
        server.submit((**s).clone(), &out);
    }
    server.drain(&out);
    server.join_workers();
    let accepted = buf
        .lines()
        .iter()
        .find(|l| event_kind(l) == "accepted")
        .cloned()
        .expect("accepted event");
    assert!(accepted.contains("\"id\":\"job-3\""), "{accepted}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Corrupted-snapshot injection: a recovered job whose checkpoint file
/// is a partial write, has a flipped checksum, or carries a version
/// skew must reject the snapshot cleanly and fall back to re-running
/// the job from the journal — never crash, never lose the job.
#[test]
fn recovery_rejects_corrupt_snapshots_and_reruns_from_journal() {
    // Produce one valid snapshot to corrupt: run a job under a tiny
    // work budget so it trips and writes its state to a client-chosen
    // checkpoint path (journal-managed paths are cleaned up on the
    // terminal, client paths are kept).
    let seed_dir = tmp_dir("mkckpt");
    let keep = seed_dir.join("keep.ckpt");
    let mut req = submit_line("seed-job", "9sym");
    req.truncate(req.len() - 1);
    req.push_str(&format!(
        ",\"work_limit\":60,\"checkpoint\":\"{}\"}}",
        keep.display()
    ));
    let _ = run_batch(journal_cfg(&seed_dir), &[req]);
    let base = if keep.exists() {
        std::fs::read(&keep).unwrap()
    } else {
        // Fall back to a structurally valid container with an alien
        // payload — still exercises every rejection path below.
        let p = seed_dir.join("synthetic.ckpt");
        gdo::snapshot::write_atomic(&p, gdo::snapshot::KIND_RUN, "cursor 0 0\n").unwrap();
        std::fs::read(&p).unwrap()
    };

    for (tag, mutate) in [
        (
            "truncated",
            Box::new(|b: &[u8]| b[..b.len() / 2].to_vec()) as Box<dyn Fn(&[u8]) -> Vec<u8>>,
        ),
        (
            "bad-checksum",
            Box::new(|b: &[u8]| {
                let mut v = b.to_vec();
                let n = v.len() - 2;
                v[n] = v[n].wrapping_add(1);
                v
            }),
        ),
        (
            "version-skew",
            Box::new(|b: &[u8]| {
                let text = String::from_utf8_lossy(b).replacen("v1", "v9", 1);
                text.into_bytes()
            }),
        ),
    ] {
        let dir = tmp_dir(&format!("corrupt_{tag}"));
        {
            let wal = Wal::open(&dir).unwrap();
            wal.append_job("job-1", &submit_line("job-1", "Z5xp1"));
        }
        std::fs::write(dir.join("job-1.ckpt"), mutate(&base)).unwrap();

        let _ = run_batch(journal_cfg(&dir), &[]);
        let recovered = std::fs::read_to_string(dir.join("recovered.ndjson")).unwrap();
        let rec_lines: Vec<String> = recovered.lines().map(str::to_string).collect();
        let done = event_for(&rec_lines, "done", "job-1")
            .unwrap_or_else(|| panic!("{tag}: job must finish from scratch: {rec_lines:#?}"));
        assert!(
            done.contains("resume_rejected"),
            "{tag}: report must note the rejected snapshot: {done}"
        );
        let replay = wal::replay(&dir).unwrap();
        assert!(replay.unfinished.is_empty(), "{tag}");
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&seed_dir).ok();
}
