//! Randomized property tests for the bounded priority [`JobQueue`]:
//! across 1/2/4/8 consumer threads, no job is lost or duplicated, FIFO
//! holds within each (producer, lane) pair, and backpressure keeps the
//! depth under the capacity bound.
//!
//! Randomness comes from a seeded xorshift generator (the workspace has
//! no external dependencies), so every run replays the same schedules'
//! *inputs* — the interleavings themselves are whatever the OS provides,
//! which is the point.

use serve::{Admission, JobQueue, Priority};
use std::collections::HashMap;
use std::sync::Arc;

/// Seeded xorshift64* — deterministic job/priority streams per producer.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// One queued token: which producer pushed it, its per-producer sequence
/// number, and the lane it went to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Token {
    producer: usize,
    seq: usize,
    lane: usize,
}

fn lanes() -> [Priority; 3] {
    [Priority::High, Priority::Normal, Priority::Low]
}

/// Drives `producers × per_producer` pushes against `consumers` popping
/// threads and checks the three queue invariants.
fn stress(consumers: usize, admission: Admission, cap: usize, seed: u64) {
    let producers = 3usize;
    let per_producer = 200usize;
    let queue = Arc::new(JobQueue::new(cap));

    let consumer_handles: Vec<_> = (0..consumers)
        .map(|_| {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let mut seen: Vec<(u64, Token)> = Vec::new();
                while let Some(entry) = queue.pop_entry() {
                    seen.push(entry);
                }
                seen
            })
        })
        .collect();

    let producer_handles: Vec<_> = (0..producers)
        .map(|p| {
            let queue = Arc::clone(&queue);
            let mut rng = XorShift(seed.wrapping_add(p as u64).wrapping_mul(0x9e37_79b9) | 1);
            std::thread::spawn(move || {
                let mut rejected: Vec<Token> = Vec::new();
                for seq in 0..per_producer {
                    let priority = lanes()[(rng.next() % 3) as usize];
                    let token = Token {
                        producer: p,
                        seq,
                        lane: priority.lane(),
                    };
                    match queue.push(token, priority, admission) {
                        Ok(()) => {}
                        Err(_) => rejected.push(token),
                    }
                }
                rejected
            })
        })
        .collect();

    let mut rejected: Vec<Token> = Vec::new();
    for h in producer_handles {
        rejected.extend(h.join().unwrap());
    }
    queue.close();
    let mut consumed: Vec<(u64, Token)> = Vec::new();
    for h in consumer_handles {
        consumed.extend(h.join().unwrap());
    }

    // Invariant 1: nothing lost, nothing duplicated. Every pushed token
    // is either consumed exactly once or was rejected exactly once.
    let mut count: HashMap<Token, usize> = HashMap::new();
    for (_, t) in &consumed {
        *count.entry(*t).or_default() += 1;
    }
    for t in &rejected {
        *count.entry(*t).or_default() += 1;
    }
    assert_eq!(
        consumed.len() + rejected.len(),
        producers * per_producer,
        "token conservation"
    );
    for p in 0..producers {
        for seq in 0..per_producer {
            let matching: usize = lanes()
                .iter()
                .filter_map(|pr| {
                    count.get(&Token {
                        producer: p,
                        seq,
                        lane: pr.lane(),
                    })
                })
                .sum();
            assert_eq!(matching, 1, "producer {p} seq {seq} seen exactly once");
        }
    }

    // Invariant 2: FIFO within each (producer, lane) pair, using the
    // dequeue tickets (assigned under the queue lock) as the total order
    // over dequeues.
    let mut ordered = consumed.clone();
    ordered.sort_by_key(|(ticket, _)| *ticket);
    let mut last_seq: HashMap<(usize, usize), usize> = HashMap::new();
    for (_, t) in &ordered {
        if let Some(prev) = last_seq.insert((t.producer, t.lane), t.seq) {
            assert!(
                prev < t.seq,
                "FIFO violated in lane {} of producer {}: seq {} dequeued after {}",
                t.lane,
                t.producer,
                t.seq,
                prev
            );
        }
    }

    // Invariant 3: the bound held, and under Block admission nothing was
    // ever rejected (blocked pushes waited instead).
    assert!(
        queue.depth_max() <= cap,
        "depth {} exceeded capacity {}",
        queue.depth_max(),
        cap
    );
    if admission == Admission::Block {
        assert!(rejected.is_empty(), "Block admission must never reject");
        // With 600 pushes through a tiny queue, someone must have waited.
        assert!(queue.blocked_pushes() > 0, "expected backpressure");
    }
}

#[test]
fn block_admission_conserves_jobs_across_worker_counts() {
    for consumers in [1, 2, 4, 8] {
        stress(
            consumers,
            Admission::Block,
            4,
            0x5eed_0001 + consumers as u64,
        );
    }
}

#[test]
fn reject_admission_conserves_jobs_across_worker_counts() {
    for consumers in [1, 2, 4, 8] {
        stress(
            consumers,
            Admission::Reject,
            4,
            0x5eed_1001 + consumers as u64,
        );
    }
}

#[test]
fn single_consumer_sees_strict_lane_priority_when_prefilled() {
    // With the queue pre-filled and one consumer, lane priority is
    // observable deterministically: every High token dequeues before any
    // Normal, every Normal before any Low.
    let queue = JobQueue::new(64);
    let mut rng = XorShift(0xabcd_ef01);
    let mut pushed = Vec::new();
    for seq in 0..48 {
        let priority = lanes()[(rng.next() % 3) as usize];
        queue
            .push((seq, priority.lane()), priority, Admission::Reject)
            .unwrap();
        pushed.push(priority.lane());
    }
    queue.close();
    let drained: Vec<(usize, usize)> = std::iter::from_fn(|| queue.pop()).collect();
    assert_eq!(drained.len(), 48);
    let lanes_seen: Vec<usize> = drained.iter().map(|&(_, lane)| lane).collect();
    let mut sorted = lanes_seen.clone();
    sorted.sort_unstable();
    assert_eq!(lanes_seen, sorted, "lanes must drain in priority order");
}
