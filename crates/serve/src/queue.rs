//! A bounded, multi-producer/multi-consumer job queue with priority
//! lanes and explicit backpressure.
//!
//! The queue is the admission control point of the service: its capacity
//! bounds the server's memory and its [`Admission`] policy decides what
//! happens when traffic exceeds it — block the submitter (backpressure
//! propagates to the client connection) or reject immediately with
//! [`PushError::Full`] so the client can retry elsewhere.
//!
//! Ordering guarantees: strict priority between lanes (a `High` item is
//! always dequeued before any waiting `Normal` or `Low` item), FIFO
//! within each lane. Closing the queue stops admission immediately but
//! lets consumers drain every item already accepted — the mechanism
//! behind graceful server drain.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

// `Priority` lives in the shared protocol crate (it is a wire-level
// concept); re-exported here because it is also the queue's lane index.
pub use proto::Priority;

/// What a full queue does to a submitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Admission {
    /// Block the submitting thread until space frees up (backpressure).
    #[default]
    Block,
    /// Fail fast with [`PushError::Full`].
    Reject,
}

impl Admission {
    /// Stable lower-case protocol name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Admission::Block => "block",
            Admission::Reject => "reject",
        }
    }

    /// Parses the protocol name.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Admission> {
        match name {
            "block" => Some(Admission::Block),
            "reject" => Some(Admission::Reject),
            _ => None,
        }
    }
}

/// Why a push did not enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity and the policy is [`Admission::Reject`].
    Full,
    /// The queue was closed (server draining); nothing is admitted.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full => write!(f, "queue full"),
            PushError::Closed => write!(f, "queue closed (draining)"),
        }
    }
}

impl std::error::Error for PushError {}

struct Inner<T> {
    lanes: [VecDeque<T>; 3],
    len: usize,
    closed: bool,
    depth_max: usize,
    blocked_pushes: u64,
    pop_ticket: u64,
}

/// The bounded MPMC priority queue. All methods take `&self`; share it
/// via `Arc` between submitters and the worker pool.
pub struct JobQueue<T> {
    cap: usize,
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `cap` items across all lanes.
    ///
    /// # Panics
    ///
    /// Panics when `cap` is zero — a zero-capacity queue can never admit.
    #[must_use]
    pub fn new(cap: usize) -> JobQueue<T> {
        assert!(cap > 0, "queue capacity must be positive");
        JobQueue {
            cap,
            inner: Mutex::new(Inner {
                lanes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
                len: 0,
                closed: false,
                depth_max: 0,
                blocked_pushes: 0,
                pop_ticket: 0,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Enqueues `item` into `priority`'s lane under `admission`.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] under [`Admission::Reject`] at capacity;
    /// [`PushError::Closed`] once [`close`](Self::close) was called
    /// (including while a blocked push is waiting).
    pub fn push(&self, item: T, priority: Priority, admission: Admission) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.len >= self.cap {
            match admission {
                Admission::Reject => return Err(PushError::Full),
                Admission::Block => {
                    inner.blocked_pushes += 1;
                    while inner.len >= self.cap {
                        inner = self
                            .not_full
                            .wait(inner)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                        if inner.closed {
                            return Err(PushError::Closed);
                        }
                    }
                }
            }
        }
        inner.lanes[priority.lane()].push_back(item);
        inner.len += 1;
        inner.depth_max = inner.depth_max.max(inner.len);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the next item (highest lane first, FIFO within a lane),
    /// blocking while the queue is empty. Returns `None` only once the
    /// queue is closed *and* fully drained.
    #[must_use]
    pub fn pop(&self) -> Option<T> {
        self.pop_entry().map(|(_, item)| item)
    }

    /// Like [`pop`](Self::pop), with the item's dequeue ticket — a
    /// counter assigned under the queue lock, so tickets totally order
    /// all dequeues (the ordering oracle of the property tests).
    #[must_use]
    pub fn pop_entry(&self) -> Option<(u64, T)> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.lanes.iter_mut().find_map(VecDeque::pop_front) {
                inner.len -= 1;
                let ticket = inner.pop_ticket;
                inner.pop_ticket += 1;
                drop(inner);
                self.not_full.notify_one();
                return Some((ticket, item));
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Removes the first queued item matching `pred` (any lane) without
    /// waking consumers — how queued jobs are cancelled before a worker
    /// picks them up.
    #[must_use]
    pub fn remove_if(&self, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        let mut inner = self.lock();
        for lane in &mut inner.lanes {
            if let Some(at) = lane.iter().position(&mut pred) {
                let item = lane.remove(at);
                if item.is_some() {
                    inner.len -= 1;
                    drop(inner);
                    self.not_full.notify_one();
                    return item;
                }
            }
        }
        None
    }

    /// Closes the queue: every pending and future push fails with
    /// [`PushError::Closed`]; consumers drain the remaining items and
    /// then see `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Whether [`close`](Self::close) was called.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Items currently queued (all lanes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Items currently queued in each lane, highest priority first —
    /// the per-lane depths behind the gateway's `/status` endpoint and
    /// its load-shedding watermarks.
    #[must_use]
    pub fn lane_depths(&self) -> [usize; 3] {
        let inner = self.lock();
        [
            inner.lanes[0].len(),
            inner.lanes[1].len(),
            inner.lanes[2].len(),
        ]
    }

    /// High-water mark of the queue depth since construction.
    #[must_use]
    pub fn depth_max(&self) -> usize {
        self.lock().depth_max
    }

    /// Pushes that had to wait for space under [`Admission::Block`] —
    /// the backpressure tally.
    #[must_use]
    pub fn blocked_pushes(&self) -> u64 {
        self.lock().blocked_pushes
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_lanes_strictly_order() {
        let q = JobQueue::new(8);
        q.push("low", Priority::Low, Admission::Reject).unwrap();
        q.push("n1", Priority::Normal, Admission::Reject).unwrap();
        q.push("hi", Priority::High, Admission::Reject).unwrap();
        q.push("n2", Priority::Normal, Admission::Reject).unwrap();
        q.close();
        let order: Vec<&str> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, ["hi", "n1", "n2", "low"]);
        assert!(q.pop().is_none(), "closed and drained");
    }

    #[test]
    fn reject_policy_fails_fast_at_capacity() {
        let q = JobQueue::new(2);
        q.push(1, Priority::Normal, Admission::Reject).unwrap();
        q.push(2, Priority::Normal, Admission::Reject).unwrap();
        assert_eq!(
            q.push(3, Priority::Normal, Admission::Reject),
            Err(PushError::Full)
        );
        assert_eq!(q.depth_max(), 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_rejects_pushes_and_drains_pops() {
        let q = JobQueue::new(4);
        q.push(1, Priority::Normal, Admission::Block).unwrap();
        q.close();
        assert_eq!(
            q.push(2, Priority::Normal, Admission::Block),
            Err(PushError::Closed)
        );
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_push_resumes_after_pop() {
        let q = std::sync::Arc::new(JobQueue::new(1));
        q.push(1, Priority::Normal, Admission::Block).unwrap();
        let q2 = std::sync::Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push(2, Priority::Normal, Admission::Block));
        // Give the producer time to block, then free a slot.
        while q.blocked_pushes() == 0 {
            std::thread::yield_now();
        }
        assert_eq!(q.pop(), Some(1));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.blocked_pushes(), 1);
        assert_eq!(q.depth_max(), 1, "capacity was never exceeded");
    }

    #[test]
    fn remove_if_cancels_a_queued_item() {
        let q = JobQueue::new(4);
        q.push("a", Priority::Normal, Admission::Reject).unwrap();
        q.push("b", Priority::Low, Admission::Reject).unwrap();
        assert_eq!(q.remove_if(|&x| x == "b"), Some("b"));
        assert_eq!(q.remove_if(|&x| x == "b"), None);
        assert_eq!(q.len(), 1);
        q.close();
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }
}
