//! `serve` — a concurrent batch-optimization service around the GDO
//! pipeline.
//!
//! The crate turns the one-shot `gdo-opt` flow into a long-lived
//! service: a bounded multi-producer/multi-consumer [`queue`] with
//! priority lanes and explicit backpressure feeds a fixed pool of
//! workers, each running one optimization at a time under a per-job
//! [`gdo::Budget`] (plus an optional server-wide work ceiling). Requests
//! and responses travel as NDJSON over TCP (`gdo-served`) or stdin
//! batch mode, hand-rolled like the rest of the workspace — no external
//! dependencies.
//!
//! - [`queue`] — the bounded priority queue (admission control).
//! - [`protocol`] — NDJSON request parsing and response events.
//! - [`job`] — job specs and single-job execution on a worker.
//! - [`server`] — the worker pool, cancel-by-id, and graceful drain.
//! - [`json`] — the minimal JSON reader behind [`protocol`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod json;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod wal;

pub use job::{JobOutcome, JobResult, JobSource, JobSpec};
pub use protocol::{Event, Request, SubmitRequest};
pub use queue::{Admission, JobQueue, Priority, PushError};
pub use server::{output_from, Output, Server, ServerConfig};
