//! Job specification and execution: what one queued optimization is,
//! and how a worker runs it (load → map → optimize under a [`Budget`]
//! → per-job [`RunReport`]).

use gdo::{Budget, EngineId, GdoConfig, GdoStats, OptimizeRequest, Pipeline, VerifyPolicy};
use library::{Library, MapGoal, Mapper};
use netlist::Netlist;
use std::path::PathBuf;
use std::time::Duration;
use telemetry::RunReport;

use crate::protocol::verify_name;
use crate::queue::Priority;

// `JobSource` lives in the shared protocol crate (it is named on the
// wire by every submit request); re-exported here for job execution.
pub use proto::JobSource;

/// One fully-specified job, defaults applied — what sits in the queue.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Unique job id (client-chosen or server-assigned `job-N`).
    pub id: String,
    /// What to optimize.
    pub source: JobSource,
    /// Wall-clock budget for the optimization stage.
    pub deadline: Option<Duration>,
    /// Deterministic work-unit ceiling (before aggregate clamping).
    pub work_limit: Option<u64>,
    /// BPFS seed. Per-job: two jobs with the same spec produce the same
    /// vector streams and therefore byte-identical report funnels, no
    /// matter which worker runs them.
    pub seed: u64,
    /// BPFS vectors per round (`None` = optimizer default).
    pub vectors: Option<usize>,
    /// Checkpointed verify-with-rollback policy.
    pub verify: VerifyPolicy,
    /// Engine pipeline run by the job, in order (validated at
    /// admission).
    pub engines: Vec<EngineId>,
    /// Partitioned optimization: cluster into roughly this many regions
    /// and optimize them region by region (`0` = whole-netlist run).
    /// Region workers stay single-threaded — the server's worker pool is
    /// the parallelism axis.
    pub partitions: usize,
    /// Queue lane.
    pub priority: Priority,
    /// Snapshot path the run checkpoints to (client-chosen or the
    /// server's journal-managed `<journal>/<id>.ckpt`).
    pub checkpoint: Option<PathBuf>,
    /// Checkpoint cadence in optimizer round boundaries.
    pub checkpoint_every: usize,
    /// Snapshot path to resume from. A snapshot that is unreadable,
    /// corrupt, or from a different spec/input is rejected cleanly
    /// (counted in `snapshot.rejected`, noted in the report meta) and
    /// the job re-runs from scratch.
    pub resume: Option<PathBuf>,
    /// Return the optimized netlist (mapped BLIF) in the terminal event.
    pub want_netlist: bool,
    /// Fault injection: panic the worker this many times before the job
    /// is allowed to run (honored only with the `fault-inject` feature).
    pub panic_attempts: u32,
}

/// How a finished job ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// Full run, nothing cut short.
    Done,
    /// Valid result, but the budget expired or a verification rolled
    /// back — the serving analogue of `gdo-opt` exit code 4.
    Degraded,
    /// Cancelled through the job's [`gdo::CancelHandle`].
    Cancelled,
}

/// What a worker hands back for a job that ran.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Resolved circuit name.
    pub circuit: String,
    /// Optimizer statistics.
    pub stats: GdoStats,
    /// The per-job report (stats merged, job metadata filled).
    pub report: RunReport,
    /// How the run ended.
    pub outcome: JobOutcome,
    /// The optimized netlist as mapped BLIF text — what a client with
    /// `"netlist":true` receives, and what the gateway's result cache
    /// stores for byte-identical replay.
    pub blif: String,
}

/// Loads a job's netlist: suite entries are generated, files parsed by
/// extension (`.bench` / `.blif`; BLIF with `.gate` lines is read as a
/// mapped netlist against `lib`). Returns the netlist and whether it is
/// already mapped.
///
/// # Errors
///
/// A display string naming the source: unknown suite entries list the
/// valid names, file problems carry the IO/parse error.
pub fn load_job_netlist(lib: &Library, source: &JobSource) -> Result<(Netlist, bool), String> {
    let (nl, mapped) = match source {
        JobSource::Suite(name) => {
            let entry = workloads::lookup_circuit(name).map_err(|e| e.to_string())?;
            (entry.build(), false)
        }
        JobSource::File(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            let format = match path.extension().and_then(|e| e.to_str()) {
                Some("bench") => proto::InputFormat::Bench,
                Some("blif") => proto::InputFormat::Blif,
                other => {
                    return Err(format!(
                        "{}: cannot infer format from extension {other:?} (use .bench or .blif)",
                        path.display()
                    ))
                }
            };
            parse_netlist_text(lib, format, &text)
                .map_err(|e| format!("{}: {e}", path.display()))?
        }
    };
    nl.validate()
        .map_err(|e| format!("invalid input netlist {}: {e}", source.describe()))?;
    Ok((nl, mapped))
}

/// Parses netlist text in `format` (BLIF with `.gate` lines is read as
/// a mapped netlist against `lib`). Returns the netlist and whether it
/// is already mapped. Shared between file loading above and the
/// gateway's shipped-input path, so a job's parse is byte-identical no
/// matter which process runs it.
///
/// # Errors
///
/// The parse error's display string.
pub fn parse_netlist_text(
    lib: &Library,
    format: proto::InputFormat,
    text: &str,
) -> Result<(Netlist, bool), String> {
    match format {
        proto::InputFormat::Bench => Ok((
            formats::parse_bench(text).map_err(|e| e.to_string())?,
            false,
        )),
        proto::InputFormat::Blif => {
            if text.lines().any(|l| l.trim_start().starts_with(".gate")) {
                Ok((
                    library::parse_mapped_blif(lib, text).map_err(|e| e.to_string())?,
                    true,
                ))
            } else {
                Ok((formats::parse_blif(text).map_err(|e| e.to_string())?, false))
            }
        }
    }
}

/// Runs one job on a worker's library under `budget`: load, map (area
/// goal, skipped for pre-mapped inputs), optimize, and assemble the
/// per-job [`RunReport`].
///
/// The spec's own `deadline`/`work_limit` are *not* consulted here — the
/// caller derives `budget` from them (plus the server-wide work
/// ceiling), so cancellation and aggregate accounting stay in one place.
///
/// # Errors
///
/// A display string (load/parse/map/optimizer failure) for the job's
/// `failed` event.
pub fn run_job(lib: &Library, spec: &JobSpec, budget: &Budget) -> Result<JobResult, String> {
    let (source_nl, mapped_input) = load_job_netlist(lib, &spec.source)?;
    let mut nl = if mapped_input {
        source_nl
    } else {
        Mapper::new(lib)
            .goal(MapGoal::Area)
            .map(&source_nl)
            .map_err(|e| format!("mapping {} failed: {e}", source_nl.name()))?
    };

    let mut cfg = GdoConfig::builder()
        .seed(spec.seed)
        .verify_policy(spec.verify);
    if let Some(vectors) = spec.vectors {
        cfg = cfg.vectors(vectors);
    }
    // One BPFS thread per job: the worker pool is the parallelism axis
    // of the server, and a single-threaded inner loop keeps a job's cost
    // predictable no matter how many workers share the machine.
    let cfg = cfg.threads(1).build().map_err(|e| e.to_string())?;

    let circuit = nl.name().to_string();
    let mut report = RunReport::default();
    report.meta.insert("job".into(), spec.id.clone());
    report.meta.insert("circuit".into(), circuit.clone());
    report.meta.insert("seed".into(), spec.seed.to_string());
    report
        .meta
        .insert("verify".into(), verify_name(spec.verify));
    report
        .meta
        .insert("engines".into(), EngineId::render_list(&spec.engines));
    let ckpt_spec = spec
        .checkpoint
        .as_ref()
        .map(|p| gdo::CheckpointSpec::new(p.clone()).every(spec.checkpoint_every.max(1)));
    // A rejected snapshot (unreadable, corrupt, wrong spec or input) must
    // never sink the job: note it, count it, and re-run from scratch —
    // the journal replay already guarantees the job itself is not lost.
    fn reject_snapshot(report: &mut RunReport, e: String) {
        telemetry::counter_add("snapshot.rejected", 1);
        report.meta.insert("resume_rejected".into(), e);
    }
    let stats = if spec.partitions > 0 {
        // Partitioned path: region workers run serially inside this job
        // (cfg.threads is 1 above), so a partitioned job costs one worker
        // slot like any other, and the per-region progress counters land
        // in the job's report.
        let popts = partition::PartitionOptions {
            cluster: partition::ClusterConfig::for_partitions(nl.stats().gates, spec.partitions),
            threads: 1,
            verify_regions: true,
            engines: spec.engines.clone(),
            checkpoint: ckpt_spec,
            ..partition::PartitionOptions::default()
        };
        let resume = match &spec.resume {
            None => None,
            Some(path) => match partition::PartitionSnapshot::read(path) {
                Ok(snap) => {
                    let expect = partition::options_digest(
                        &cfg,
                        &popts.cluster,
                        &popts.engines,
                        popts.verify_regions,
                    );
                    if snap.config_digest == expect
                        && snap.input_digest == gdo::snapshot::netlist_digest(&nl)
                    {
                        Some(snap)
                    } else {
                        reject_snapshot(
                            &mut report,
                            format!(
                                "{}: snapshot was written by a different job spec or input",
                                path.display()
                            ),
                        );
                        None
                    }
                }
                Err(e) => {
                    reject_snapshot(&mut report, format!("{}: {e}", path.display()));
                    None
                }
            },
        };
        let popts = partition::PartitionOptions {
            resume_from: resume,
            ..popts
        };
        let ps = partition::optimize_partitioned(lib, &cfg, &mut nl, &popts, budget)
            .map_err(|e| format!("optimizing {circuit} failed: {e}"))?;
        ps.merge_into_report(&mut report);
        ps.gdo
    } else {
        let mut req = OptimizeRequest::new(cfg).engines(spec.engines.clone());
        if let Some(ck) = ckpt_spec {
            req = req.checkpoint(ck);
        }
        if let Some(path) = &spec.resume {
            match gdo::RunSnapshot::read(path) {
                Ok(snap)
                    if snap.config_digest == gdo::snapshot::config_digest(&req)
                        && snap.input_digest == gdo::snapshot::netlist_digest(&nl) =>
                {
                    req = req.resume_from(snap);
                }
                Ok(_) => reject_snapshot(
                    &mut report,
                    format!(
                        "{}: snapshot was written by a different job spec or input",
                        path.display()
                    ),
                ),
                Err(e) => reject_snapshot(&mut report, format!("{}: {e}", path.display())),
            }
        }
        let stats = Pipeline::new(lib)
            .run(&req, &mut nl, budget)
            .map_err(|e| format!("optimizing {circuit} failed: {e}"))?;
        stats.merge_into_report(&mut report);
        stats
    };

    let outcome = if budget.was_cancelled_externally() {
        JobOutcome::Cancelled
    } else if stats.budget_exhausted || stats.verify_rollbacks > 0 {
        JobOutcome::Degraded
    } else {
        JobOutcome::Done
    };
    let blif = library::write_mapped_blif(lib, &nl)
        .map_err(|e| format!("writing {circuit} result netlist failed: {e}"))?;
    Ok(JobResult {
        circuit,
        stats,
        report,
        outcome,
        blif,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(source: JobSource) -> JobSpec {
        JobSpec {
            id: "t1".to_string(),
            source,
            deadline: None,
            work_limit: None,
            seed: 1995,
            vectors: Some(64),
            verify: VerifyPolicy::Off,
            engines: vec![EngineId::Gdo],
            partitions: 0,
            priority: Priority::Normal,
            checkpoint: None,
            checkpoint_every: 1,
            resume: None,
            want_netlist: false,
            panic_attempts: 0,
        }
    }

    #[test]
    fn suite_job_runs_end_to_end() {
        let lib = library::standard_library();
        let s = spec(JobSource::Suite("Z5xp1".to_string()));
        let budget = Budget::unlimited();
        let result = run_job(&lib, &s, &budget).unwrap();
        assert_eq!(result.circuit, "Z5xp1");
        assert_eq!(result.outcome, JobOutcome::Done);
        assert!(result.stats.gates_after > 0);
        assert_eq!(result.report.meta["job"], "t1");
        assert_eq!(result.report.meta["circuit"], "Z5xp1");
        telemetry::validate_json(&result.report.to_json()).unwrap();
    }

    #[test]
    fn partitioned_job_reports_region_counters() {
        let lib = library::standard_library();
        let mut s = spec(JobSource::Suite("C880".to_string()));
        s.partitions = 4;
        let result = run_job(&lib, &s, &Budget::unlimited()).unwrap();
        assert_eq!(result.outcome, JobOutcome::Done);
        let regions = result.report.counters["partition.regions"];
        assert!(regions >= 4, "expected several regions, got {regions}");
        assert!(result
            .report
            .counters
            .contains_key("partition.regions_done"));
        telemetry::validate_json(&result.report.to_json()).unwrap();
    }

    #[test]
    fn unknown_suite_entry_lists_valid_names() {
        let lib = library::standard_library();
        let s = spec(JobSource::Suite("nope".to_string()));
        let err = run_job(&lib, &s, &Budget::unlimited()).unwrap_err();
        assert!(err.contains("valid names"), "{err}");
        assert!(err.contains("Z5xp1"), "{err}");
    }

    #[test]
    fn file_job_reads_bench() {
        let dir = std::env::temp_dir().join(format!("gdo_serve_job_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sym.bench");
        let nl = workloads::sym_detector(5, 1, 3);
        let subject = library::to_subject_graph(&nl).unwrap();
        std::fs::write(&path, formats::write_bench(&subject).unwrap()).unwrap();
        let lib = library::standard_library();
        let result = run_job(&lib, &spec(JobSource::File(path)), &Budget::unlimited()).unwrap();
        assert_eq!(result.outcome, JobOutcome::Done);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn exhausted_work_limit_reports_degraded() {
        let lib = library::standard_library();
        let s = spec(JobSource::Suite("9sym".to_string()));
        let budget = Budget::new(None, Some(1));
        let result = run_job(&lib, &s, &budget).unwrap();
        assert_eq!(result.outcome, JobOutcome::Degraded);
        assert!(result.stats.budget_exhausted);
        assert_eq!(result.report.counters["budget.exhausted"], 1);
    }

    #[test]
    fn cancelled_budget_reports_cancelled() {
        let lib = library::standard_library();
        let s = spec(JobSource::Suite("9sym".to_string()));
        let budget = Budget::unlimited();
        budget.cancel_handle().cancel();
        let result = run_job(&lib, &s, &budget).unwrap();
        assert_eq!(result.outcome, JobOutcome::Cancelled);
    }

    #[test]
    fn missing_file_fails_with_path() {
        let lib = library::standard_library();
        let s = spec(JobSource::File("/nonexistent/x.bench".into()));
        let err = run_job(&lib, &s, &Budget::unlimited()).unwrap_err();
        assert!(err.contains("/nonexistent/x.bench"), "{err}");
    }
}
