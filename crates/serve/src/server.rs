//! The optimization server: a bounded job queue feeding a fixed worker
//! pool, with per-job budgets, cancel-by-id, and graceful drain.
//!
//! One [`Server`] owns N worker threads. Each worker holds its own clone
//! of the cell [`Library`] (no shared mutable state on the hot path) and
//! runs one job at a time under a per-job [`Budget`]. Submissions pass
//! through the [`JobQueue`] — the single admission-control point — and
//! every event a job produces is written to the NDJSON stream of the
//! connection that submitted it.
//!
//! With a journal directory configured the server is additionally
//! crash-safe: accepted jobs and terminal outcomes go through the
//! [`crate::wal`] job journal, per-job snapshots land next to it, and a
//! restarted server re-enqueues (resuming when possible) every job the
//! previous process accepted but never concluded. Worker panics are
//! supervised: attempts retry with capped exponential backoff and a
//! deterministic jitter, and a job that panics on every attempt is
//! quarantined with a `poisoned` terminal instead of looping forever.

use crate::job::{self, JobOutcome, JobSource, JobSpec};
use crate::protocol::{Event, Request, SubmitRequest};
use crate::queue::{Admission, JobQueue, PushError};
use crate::wal::{self, Wal};
use gdo::{Budget, CancelHandle, VerifyPolicy};
use library::Library;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where a job's events go: the submitting connection's write half,
/// shared between the admission thread and the worker that runs the job.
pub type Output = Arc<Mutex<Box<dyn Write + Send>>>;

/// Wraps a writer as an event [`Output`].
pub fn output_from(w: impl Write + Send + 'static) -> Output {
    Arc::new(Mutex::new(Box::new(w)))
}

/// Writes one event line to `out` (best effort: a disconnected client
/// must not take the worker down with it).
fn emit(out: &Output, event: &Event) {
    let mut w = out
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = writeln!(w, "{}", event.to_json());
    let _ = w.flush();
}

/// Static configuration of one [`Server`].
pub struct ServerConfig {
    /// Worker threads (each owns a library clone). Must be positive.
    pub workers: usize,
    /// Queue capacity across all lanes. Must be positive.
    pub queue_cap: usize,
    /// What a full queue does to submitters.
    pub admission: Admission,
    /// The cell library jobs are mapped against.
    pub library: Library,
    /// Server-wide ceiling on total optimizer work units; once spent,
    /// later jobs run with a zero work budget (immediately degraded).
    pub work_ceiling: Option<u64>,
    /// Default verify policy for submits that name none.
    pub default_verify: VerifyPolicy,
    /// Default BPFS seed for submits that name none.
    pub default_seed: u64,
    /// Durable job journal directory. When set, accepted jobs and
    /// terminal outcomes are logged to `<dir>/jobs.wal`, every job
    /// checkpoints to `<dir>/<id>.ckpt`, and [`Server::new`] recovers
    /// unfinished jobs a previous process left behind.
    pub journal_dir: Option<PathBuf>,
    /// How many times a job whose worker panicked is retried before it
    /// is quarantined with a `poisoned` terminal.
    pub retry_max: u32,
    /// Checkpoint cadence, in optimizer round boundaries, for
    /// journal-managed jobs.
    pub checkpoint_every: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_cap: 16,
            admission: Admission::Block,
            library: library::standard_library(),
            work_ceiling: None,
            default_verify: VerifyPolicy::Final,
            default_seed: 1995,
            journal_dir: None,
            retry_max: 2,
            checkpoint_every: 4,
        }
    }
}

/// Per-job control block: lets `cancel` reach a job whether it is still
/// queued (flag checked before start) or already running (live
/// [`CancelHandle`] registered by the worker).
struct JobControl {
    cancelled: AtomicBool,
    running: Mutex<Option<CancelHandle>>,
}

impl JobControl {
    fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
        if let Some(handle) = self
            .running
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
        {
            handle.cancel();
        }
    }
}

struct QueuedJob {
    spec: JobSpec,
    control: Arc<JobControl>,
    out: Output,
    /// Set once the submitter has written the `accepted` event; workers
    /// wait on it so `started` can never precede `accepted`.
    announced: Arc<AtomicBool>,
}

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    rejected: AtomicU64,
    done: AtomicU64,
    degraded: AtomicU64,
    failed: AtomicU64,
    cancelled: AtomicU64,
    poisoned: AtomicU64,
    recovered: AtomicU64,
}

struct Shared {
    queue: JobQueue<QueuedJob>,
    registry: Mutex<HashMap<String, Arc<JobControl>>>,
    counters: Counters,
    /// Jobs between admission and their terminal event. Unlike `running`
    /// (started → finished) or the queue depth, this has no gap while a
    /// worker holds a popped job it has not started yet, so drain waits
    /// on it instead.
    inflight: AtomicUsize,
    running: AtomicUsize,
    draining: AtomicBool,
    drain_t0: Mutex<Option<Instant>>,
    /// Work units left under the aggregate ceiling (`u64::MAX` when the
    /// server runs unlimited).
    ceiling_left: AtomicU64,
    has_ceiling: bool,
    next_id: AtomicU64,
    admission: Admission,
    /// Tells [`Server::serve`]'s accept loop to stop.
    shutdown: AtomicBool,
    /// Terminal outcome of every job that already finished (fed from
    /// journal replay on restart). Lets `cancel` answer a lost race with
    /// a structured `already_finished` instead of a second terminal.
    finished: Mutex<HashMap<String, String>>,
    /// The durable job journal, when the server runs with one.
    wal: Option<Wal>,
    journal_dir: Option<PathBuf>,
    retry_max: u32,
    checkpoint_every: usize,
}

impl Shared {
    fn counter_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            (
                "jobs_accepted",
                self.counters.accepted.load(Ordering::Relaxed),
            ),
            (
                "jobs_rejected",
                self.counters.rejected.load(Ordering::Relaxed),
            ),
            ("jobs_done", self.counters.done.load(Ordering::Relaxed)),
            (
                "jobs_degraded",
                self.counters.degraded.load(Ordering::Relaxed),
            ),
            ("jobs_failed", self.counters.failed.load(Ordering::Relaxed)),
            (
                "jobs_cancelled",
                self.counters.cancelled.load(Ordering::Relaxed),
            ),
            (
                "jobs_poisoned",
                self.counters.poisoned.load(Ordering::Relaxed),
            ),
            (
                "jobs_recovered",
                self.counters.recovered.load(Ordering::Relaxed),
            ),
            ("queue_depth_max", self.queue.depth_max() as u64),
            ("blocked_pushes", self.queue.blocked_pushes()),
        ]
    }

    fn unregister(&self, id: &str) {
        self.registry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(id);
    }

    /// The single exit point of an accepted job's lifecycle. Records the
    /// outcome in the finished map and the job journal *before* the
    /// terminal event is emitted — a crash between journal append and
    /// emission loses at most the notification, never the decision, so
    /// an accepted id reaches exactly one terminal outcome across any
    /// number of restarts — then unregisters, emits, counts, and drops
    /// the job out of `inflight`.
    fn finish(&self, id: &str, out: &Output, event: &Event) {
        let outcome = event.terminal_outcome().unwrap_or("unknown");
        self.finished
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(id.to_string(), outcome.to_string());
        if let Some(wal) = &self.wal {
            wal.append_terminal(id, outcome);
        }
        if let Some(dir) = &self.journal_dir {
            // The journal-managed snapshot has served its purpose.
            let _ = std::fs::remove_file(dir.join(format!("{id}.ckpt")));
        }
        self.unregister(id);
        match event {
            Event::Done { .. } => {
                self.counters.done.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.jobs_done", 1);
            }
            Event::Degraded { .. } => {
                self.counters.degraded.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.jobs_degraded", 1);
            }
            Event::Failed { .. } => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
            }
            Event::Cancelled { .. } => {
                self.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            }
            Event::Poisoned { .. } => {
                self.counters.poisoned.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("supervisor.poisoned", 1);
            }
            _ => {}
        }
        emit(out, event);
        self.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The running service. Workers start in [`Server::new`] and exit once
/// the queue is closed and drained.
pub struct Server {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    defaults: (u64, VerifyPolicy),
}

impl Server {
    /// Starts the worker pool. With a journal directory configured, the
    /// previous process's journal is replayed first: jobs it accepted
    /// but never concluded are re-enqueued (resuming from their last
    /// snapshot when one is readable), their events appended to
    /// `<dir>/recovered.ndjson`.
    ///
    /// # Panics
    ///
    /// Panics when `cfg.workers` is zero (a server that can run nothing)
    /// or `cfg.queue_cap` is zero (via [`JobQueue::new`]), and when the
    /// journal directory cannot be created or its journal not read — a
    /// server asked to be durable must not start undurably.
    #[must_use]
    pub fn new(cfg: ServerConfig) -> Server {
        assert!(cfg.workers > 0, "server needs at least one worker");
        let replayed = cfg.journal_dir.as_ref().map(|dir| {
            wal::replay(dir).unwrap_or_else(|e| panic!("cannot replay job journal: {e}"))
        });
        let wal = cfg
            .journal_dir
            .as_ref()
            .map(|dir| Wal::open(dir).unwrap_or_else(|e| panic!("cannot open job journal: {e}")));
        let next_id = replayed.as_ref().map_or(0, |r| r.max_numeric_id) + 1;
        let finished = replayed
            .as_ref()
            .map(|r| r.finished.iter().cloned().collect())
            .unwrap_or_default();
        let shared = Arc::new(Shared {
            queue: JobQueue::new(cfg.queue_cap),
            registry: Mutex::new(HashMap::new()),
            counters: Counters::default(),
            inflight: AtomicUsize::new(0),
            running: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
            drain_t0: Mutex::new(None),
            ceiling_left: AtomicU64::new(cfg.work_ceiling.unwrap_or(u64::MAX)),
            has_ceiling: cfg.work_ceiling.is_some(),
            next_id: AtomicU64::new(next_id),
            admission: cfg.admission,
            shutdown: AtomicBool::new(false),
            finished: Mutex::new(finished),
            wal,
            journal_dir: cfg.journal_dir.clone(),
            retry_max: cfg.retry_max,
            checkpoint_every: cfg.checkpoint_every,
        });
        let workers = (0..cfg.workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                let lib = cfg.library.clone();
                std::thread::Builder::new()
                    .name(format!("gdo-worker-{index}"))
                    .spawn(move || worker_loop(index, &lib, &shared))
                    .expect("spawn worker thread")
            })
            .collect();
        let server = Server {
            shared,
            workers: Mutex::new(workers),
            defaults: (cfg.default_seed, cfg.default_verify),
        };
        if let (Some(replay), Some(dir)) = (replayed, cfg.journal_dir.as_ref()) {
            server.recover(replay, dir);
        }
        server
    }

    /// Re-enqueues every journaled-but-unfinished job. Their events have
    /// no live connection to go to, so they append to
    /// `<dir>/recovered.ndjson` — the operator's record of what the
    /// restart replayed.
    fn recover(&self, replay: wal::Replay, dir: &std::path::Path) {
        if replay.unfinished.is_empty() {
            return;
        }
        let out: Output = match std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("recovered.ndjson"))
        {
            Ok(f) => output_from(f),
            Err(_) => output_from(std::io::sink()),
        };
        for job in replay.unfinished {
            let mut req = job.spec;
            req.id = Some(job.id.clone());
            // Resume from the job's own snapshot when the crashed run got
            // far enough to write one; `run_job` falls back to a scratch
            // run if the file turns out truncated or corrupt.
            let ckpt = dir.join(format!("{}.ckpt", job.id));
            if req.resume.is_none() && ckpt.exists() {
                req.resume = Some(ckpt);
            }
            self.shared
                .counters
                .recovered
                .fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("server.jobs_recovered", 1);
            self.submit(req, &out);
        }
    }

    /// Parses and dispatches one request line, writing response events to
    /// `out`. Returns `true` once the server has fully drained (the
    /// caller's read loop should stop).
    pub fn handle_line(&self, line: &str, out: &Output) -> bool {
        let line = line.trim();
        if line.is_empty() {
            return false;
        }
        match crate::protocol::parse_request(line) {
            Err(error) => emit(out, &Event::Error { error }),
            Ok(Request::Status) => self.status(out),
            Ok(Request::Cancel { id }) => self.cancel(&id, out),
            Ok(Request::Submit(req)) => self.submit(*req, out),
            Ok(Request::Drain) => {
                self.drain(out);
                return true;
            }
        }
        false
    }

    /// Admits one job (or rejects it) and reports the decision to `out`.
    pub fn submit(&self, req: SubmitRequest, out: &Output) {
        let shared = &self.shared;
        let id = req
            .id
            .clone()
            .unwrap_or_else(|| format!("job-{}", shared.next_id.fetch_add(1, Ordering::Relaxed)));
        // In flight from here until the terminal event (`rejected` below,
        // or done/degraded/failed/cancelled from whoever finishes it).
        shared.inflight.fetch_add(1, Ordering::SeqCst);
        let reject = |reason: String| {
            shared.counters.rejected.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("server.jobs_rejected", 1);
            emit(
                out,
                &Event::Rejected {
                    id: id.clone(),
                    reason,
                },
            );
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
        };

        // Validate suite names at admission so typos fail fast with the
        // full list of valid names, not after queueing.
        if let JobSource::Suite(name) = &req.source {
            if let Err(e) = workloads::lookup_circuit(name) {
                reject(e.to_string());
                return;
            }
        }

        // Engine lists get the same treatment: an unknown engine name is
        // a protocol-level mistake, rejected with the full list of valid
        // engines before the job ever queues.
        let engines = match &req.engines {
            None => vec![gdo::EngineId::Gdo],
            Some(list) => match gdo::EngineId::parse_list(list) {
                Ok(engines) => engines,
                Err(e) => {
                    reject(e.to_string());
                    return;
                }
            },
        };

        let control = Arc::new(JobControl {
            cancelled: AtomicBool::new(false),
            running: Mutex::new(None),
        });
        {
            let mut registry = shared
                .registry
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if registry.contains_key(&id) {
                drop(registry);
                reject(format!("duplicate job id {id:?}"));
                return;
            }
            registry.insert(id.clone(), Arc::clone(&control));
        }

        // Journal the job before it can run: a crash after this line
        // recovers the job, a crash before it means the client never saw
        // `accepted`. The journaled spec carries the assigned id so the
        // replay can correlate it with its terminal record.
        let wal_spec = shared.wal.as_ref().map(|_| {
            crate::protocol::submit_to_json(&SubmitRequest {
                id: Some(id.clone()),
                ..req.clone()
            })
        });

        // Journal-managed jobs checkpoint next to the journal so a
        // restart can resume them; an explicit client path wins.
        let checkpoint = req.checkpoint.clone().or_else(|| {
            shared
                .journal_dir
                .as_ref()
                .map(|dir| dir.join(format!("{id}.ckpt")))
        });
        let spec = JobSpec {
            id: id.clone(),
            source: req.source,
            deadline: req.deadline_ms.map(Duration::from_millis),
            work_limit: req.work_limit,
            seed: req.seed.unwrap_or(self.default_seed()),
            vectors: req.vectors,
            verify: req.verify.unwrap_or(self.default_verify()),
            engines,
            partitions: req.partitions.unwrap_or(0),
            priority: req.priority,
            checkpoint,
            checkpoint_every: shared.checkpoint_every,
            resume: req.resume,
            want_netlist: req.want_netlist,
            panic_attempts: req.panic_attempts.unwrap_or(0),
        };
        let priority = spec.priority;
        let announced = Arc::new(AtomicBool::new(false));
        let queued = QueuedJob {
            spec,
            control,
            out: Arc::clone(out),
            announced: Arc::clone(&announced),
        };
        if let (Some(wal), Some(line)) = (&shared.wal, &wal_spec) {
            wal.append_job(&id, line);
        }
        // Under `Admission::Block` this is where backpressure lives: the
        // submitting thread (and through it, the client connection)
        // waits here until a worker frees a slot.
        match shared.queue.push(queued, priority, shared.admission) {
            Ok(()) => {
                shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
                telemetry::counter_add("server.jobs_accepted", 1);
                emit(
                    out,
                    &Event::Accepted {
                        id,
                        priority,
                        queue_depth: shared.queue.len(),
                    },
                );
                announced.store(true, Ordering::Release);
            }
            Err(e @ (PushError::Full | PushError::Closed)) => {
                // The job was journaled but never admitted: close its
                // journal lifecycle so a restart does not resurrect it.
                if let Some(wal) = &shared.wal {
                    wal.append_terminal(&id, "rejected");
                }
                shared.unregister(&id);
                reject(e.to_string());
            }
        }
    }

    /// Cancels a job by id: removes it from the queue when still
    /// waiting, or trips its running budget's cancel flag. Cancelling a
    /// job that already reached its terminal event answers with a
    /// structured `already_finished` (carrying the outcome it reached)
    /// rather than a second terminal or a spurious error; ids the server
    /// has never seen produce an `error` event on the canceller's
    /// stream.
    pub fn cancel(&self, id: &str, out: &Output) {
        let shared = &self.shared;
        let control = shared
            .registry
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(id)
            .cloned();
        let Some(control) = control else {
            let outcome = shared
                .finished
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .get(id)
                .cloned();
            match outcome {
                Some(outcome) => emit(
                    out,
                    &Event::AlreadyFinished {
                        id: id.to_string(),
                        outcome,
                    },
                ),
                None => emit(
                    out,
                    &Event::Error {
                        error: format!("unknown job id {id:?}"),
                    },
                ),
            }
            return;
        };
        // Flag first: a worker that pops the job between our remove_if
        // and its pre-start check still sees the cancellation.
        control.cancel();
        if let Some(job) = shared.queue.remove_if(|j| j.spec.id == id) {
            // Never ran; this thread owns the terminal event.
            while !job.announced.load(Ordering::Acquire) {
                std::thread::yield_now();
            }
            shared.finish(id, &job.out, &Event::Cancelled { id: id.to_string() });
        }
        // Otherwise a worker holds the job and will emit `cancelled`.
    }

    /// Answers a `status` request.
    pub fn status(&self, out: &Output) {
        let shared = &self.shared;
        emit(
            out,
            &Event::Status {
                queue_depth: shared.queue.len(),
                running: shared.running.load(Ordering::SeqCst),
                draining: shared.draining.load(Ordering::SeqCst),
                counters: shared.counter_pairs(),
            },
        );
    }

    /// Graceful drain: stops admission immediately, waits for queued and
    /// in-flight jobs to finish (their reports flush to their own
    /// streams), then reports `drained` with the elapsed time and
    /// publishes the `server.*` telemetry roll-up.
    pub fn drain(&self, out: &Output) {
        let shared = &self.shared;
        let t0 = {
            let mut slot = shared
                .drain_t0
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *slot.get_or_insert_with(Instant::now)
        };
        shared.draining.store(true, Ordering::SeqCst);
        emit(out, &Event::Draining);
        shared.queue.close();
        // `inflight` covers queued jobs, jobs a worker has popped but not
        // yet started, and running jobs — it only drops after the job's
        // terminal event is written, so `drained` is always last.
        while shared.inflight.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let drain_ms = t0.elapsed().as_millis() as u64;
        telemetry::counter_add("server.queue_depth_max", shared.queue.depth_max() as u64);
        telemetry::counter_add("server.drain_ms", drain_ms);
        emit(out, &Event::Drained { drain_ms });
        shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether a drain has completed (the accept loop should stop).
    #[must_use]
    pub fn is_shut_down(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }

    /// Joins the worker pool. Only returns after the queue was closed
    /// (drain); called by [`serve`](Self::serve) and the batch runner.
    pub fn join_workers(&self) {
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Serves connections on `listener` until a client sends `drain`.
    /// One thread per connection; each request line's events go back on
    /// that connection.
    ///
    /// # Errors
    ///
    /// IO errors from the listener itself (per-connection errors only
    /// end that connection).
    pub fn serve(self: &Arc<Self>, listener: &TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut conns: Vec<JoinHandle<()>> = Vec::new();
        loop {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let server = Arc::clone(self);
                    let reader = BufReader::new(stream.try_clone()?);
                    let out = output_from(stream);
                    conns.push(std::thread::spawn(move || {
                        server.run_connection(reader, &out);
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if self.is_shut_down() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(e),
            }
        }
        for c in conns {
            let _ = c.join();
        }
        self.join_workers();
        Ok(())
    }

    /// Processes one connection's request lines until EOF or drain.
    fn run_connection(&self, reader: impl BufRead, out: &Output) {
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if self.handle_line(&line, out) {
                break;
            }
        }
    }

    /// Batch mode: processes request lines from `reader` (e.g. stdin),
    /// then drains — EOF is an implicit `drain` — and joins the workers.
    pub fn run_batch(&self, reader: impl BufRead, out: &Output) {
        let mut drained = false;
        for line in reader.lines() {
            let Ok(line) = line else { break };
            if self.handle_line(&line, out) {
                drained = true;
                break;
            }
        }
        if !drained {
            self.drain(out);
        }
        self.join_workers();
    }

    fn default_seed(&self) -> u64 {
        self.defaults.0
    }

    fn default_verify(&self) -> VerifyPolicy {
        self.defaults.1
    }
}

/// The per-attempt budget. Each retry starts from a fresh budget (a
/// panicked attempt must not bequeath a half-spent clock), and a job
/// resuming from a snapshot runs on the snapshot's *remaining* time and
/// work rather than its original allocation — a recovered job would
/// otherwise inherit an already-expired absolute deadline.
fn attempt_budget(spec: &JobSpec, shared: &Shared) -> Budget {
    let (snap_time_ms, snap_work) = spec
        .resume
        .as_ref()
        .and_then(|p| gdo::snapshot::peek_remainders(p).ok())
        .unwrap_or((None, None));
    let explicit_ms = spec
        .deadline
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
    let time_ms = snap_time_ms.or(explicit_ms);
    let work = snap_work.or(spec.work_limit);
    // Clamp by what is left of the server-wide ceiling; jobs after
    // exhaustion run with zero budget and come back degraded rather
    // than silently unbounded.
    let limit = if shared.has_ceiling {
        let remaining = shared.ceiling_left.load(Ordering::SeqCst);
        Some(work.map_or(remaining, |w| w.min(remaining)))
    } else {
        work
    };
    Budget::new(time_ms.map(Duration::from_millis), limit)
}

/// Capped exponential backoff with deterministic jitter: the retry
/// schedule of a given (job, seed, attempt) is reproducible, so tests
/// and incident timelines are too.
fn backoff_delay(id: &str, seed: u64, attempt: u32) -> Duration {
    let base_ms = 10u64 << attempt.min(4);
    let mut x = (seed ^ gdo::snapshot::fnv1a64(id.as_bytes()) ^ (u64::from(attempt) << 32)) | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    Duration::from_millis(base_ms.min(160) + x % (base_ms / 2 + 1))
}

/// A panic payload's human-readable message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

fn worker_loop(index: usize, lib: &Library, shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        // `started` must not outrun the submitter's `accepted` line.
        while !job.announced.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        let id = job.spec.id.clone();
        if job.control.cancelled.load(Ordering::SeqCst) {
            shared.finish(&id, &job.out, &Event::Cancelled { id: id.clone() });
            continue;
        }
        shared.running.fetch_add(1, Ordering::SeqCst);
        emit(
            &job.out,
            &Event::Started {
                id: id.clone(),
                worker: index,
                circuit: job.spec.source.describe(),
            },
        );

        // Supervision: an optimizer panic must not take the worker
        // thread (and with it a pool slot) down, and must not lose the
        // job. Attempts retry with capped exponential backoff; a job
        // that panics on every attempt is quarantined as poisoned.
        let mut attempt: u32 = 0;
        let supervised = loop {
            let budget = attempt_budget(&job.spec, shared);
            *job.control
                .running
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(budget.cancel_handle());
            // The cancel flag may have been set between the pre-start
            // check and handle registration; re-check so the cancel is
            // not lost.
            if job.control.cancelled.load(Ordering::SeqCst) {
                budget.cancel_handle().cancel();
            }

            let run = std::panic::catch_unwind(AssertUnwindSafe(|| {
                #[cfg(feature = "fault-inject")]
                if attempt < job.spec.panic_attempts {
                    panic!("fault-inject: injected worker panic (attempt {attempt})");
                }
                job::run_job(lib, &job.spec, &budget)
            }));

            if shared.has_ceiling {
                let used = budget.work_done();
                let _ =
                    shared
                        .ceiling_left
                        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |left| {
                            Some(left.saturating_sub(used))
                        });
            }
            match run {
                Ok(result) => break Ok(result),
                Err(payload) => {
                    telemetry::counter_add("supervisor.panics", 1);
                    let error = panic_message(payload.as_ref());
                    if attempt >= shared.retry_max {
                        break Err((attempt + 1, error));
                    }
                    attempt += 1;
                    telemetry::counter_add("retry.attempts", 1);
                    std::thread::sleep(backoff_delay(&id, job.spec.seed, attempt));
                }
            }
        };
        let event = match supervised {
            Ok(Ok(r)) => match r.outcome {
                JobOutcome::Done => Event::Done {
                    id: id.clone(),
                    report: r.report,
                    cached: false,
                    blif: job.spec.want_netlist.then_some(r.blif),
                },
                JobOutcome::Degraded => Event::Degraded {
                    id: id.clone(),
                    report: r.report,
                    cached: false,
                    blif: job.spec.want_netlist.then_some(r.blif),
                },
                JobOutcome::Cancelled => Event::Cancelled { id: id.clone() },
            },
            Ok(Err(error)) => Event::Failed {
                id: id.clone(),
                error,
            },
            Err((attempts, error)) => Event::Poisoned {
                id: id.clone(),
                attempts,
                error,
            },
        };
        shared.finish(&id, &job.out, &event);
        shared.running.fetch_sub(1, Ordering::SeqCst);
    }
}
