//! Re-export of the shared JSON reader.
//!
//! The hand-rolled parser moved to [`proto::json`] when the serving
//! stack split into gateway and worker processes; this alias keeps
//! `crate::json::…` paths (and downstream `serve::json::…` users)
//! working.

pub use proto::json::{parse, Json};
