//! A minimal hand-rolled JSON reader for the NDJSON request protocol.
//!
//! The workspace policy is zero external dependencies, and [`telemetry`]
//! only *writes* JSON (plus a syntax validator); the server must also
//! *read* request lines. This module parses one JSON value into a small
//! dynamic [`Json`] tree with the handful of accessors the protocol
//! needs. It is not a general-purpose parser: numbers are `f64`, objects
//! keep last-key-wins semantics, and `\uXXXX` escapes outside the BMP
//! are passed through as replacement characters.

use std::collections::BTreeMap;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (sorted keys, last duplicate wins).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member lookup on an object (`None` on other kinds).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if this is a
    /// non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses exactly one JSON value from `text` (surrounding whitespace
/// allowed, trailing data rejected).
///
/// # Errors
///
/// A human-readable description of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut members = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                skip_ws(b, pos);
                let value = parse_value(b, pos)?;
                members.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                skip_ws(b, pos);
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, b"true").map(|()| Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, b"false").map(|()| Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, b"null").map(|()| Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *pos + lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        if *pos + 4 >= b.len() {
                            return Err(format!("bad \\u escape at byte {pos}"));
                        }
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                            .ok()
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            0x00..=0x1f => return Err(format!("raw control char at byte {pos}")),
            _ => {
                // Consume one full UTF-8 scalar (the input is a &str, so
                // continuation bytes are well-formed by construction).
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let end = (*pos + len).min(b.len());
                out.push_str(std::str::from_utf8(&b[*pos..end]).map_err(|e| e.to_string())?);
                *pos = end;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while b
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shaped_objects() {
        let v = parse(
            r#"{"op":"submit","id":"j1","circuit":"9sym","deadline_ms":250,
                "seed":7,"priority":"high","flag":true,"opt":null}"#,
        )
        .unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("submit"));
        assert_eq!(v.get("deadline_ms").and_then(Json::as_u64), Some(250));
        assert_eq!(v.get("seed").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("flag").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("opt"), Some(&Json::Null));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn round_trips_telemetry_escaping() {
        let original = "a\"b\\c\nd\te\u{1}f";
        let escaped = telemetry::json_escaped(original);
        let back = parse(&escaped).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn parses_nested_arrays_and_numbers() {
        let v = parse("[1, -2.5, [\"x\"], {\"k\": 3e2}]").unwrap();
        let Json::Arr(items) = &v else {
            panic!("not an array")
        };
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(items[3].get("k").and_then(Json::as_f64), Some(300.0));
        // -2.5 is not integral, so it is not a u64.
        assert_eq!(items[1].as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "nul",
            "\"abc",
            "{\"a\":1} x",
            "1.2.3",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accepts_everything_the_validator_accepts() {
        for good in [
            "null",
            "true",
            "-1.5e-3",
            "[1,2,[]]",
            "{\"a\":{\"b\":[1,\"x\",null]}}",
            "  {}  ",
            "\"\\u00ff\"",
        ] {
            telemetry::validate_json(good).unwrap();
            parse(good).unwrap_or_else(|e| panic!("rejected {good:?}: {e}"));
        }
    }
}
