//! Durable job journal (write-ahead log) for crash recovery.
//!
//! When the server runs with a journal directory, every accepted job
//! appends one `job` record before its `accepted` event goes out, and
//! every terminal appends one `terminal` record *before* the terminal
//! event is emitted. After a crash, [`replay`] partitions the journal
//! into finished and unfinished jobs: an id with a `job` record but no
//! `terminal` record was accepted and never concluded, so the restarted
//! server re-enqueues it (resuming from its last snapshot when one is
//! readable). Writing the terminal record first means a crash between
//! journal append and event emission loses the *notification*, never the
//! *decision* — the job is not run a second time, so each accepted id
//! reaches exactly one terminal outcome across any number of restarts.
//!
//! The journal is NDJSON, one record per line:
//!
//! ```json
//! {"wal":"job","id":"job-3","spec":{"op":"submit","circuit":"9sym"}}
//! {"wal":"terminal","id":"job-3","outcome":"done"}
//! ```
//!
//! The `spec` object is exactly the wire-format submit request
//! ([`crate::protocol::submit_to_json`]), reparsed on replay by the same
//! parser the server uses for live connections — the journal cannot
//! drift from the protocol. A torn final line (the crash happened
//! mid-append) is skipped; every complete line before it replays.

use crate::json::{self, Json};
use crate::protocol::SubmitRequest;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use telemetry::json_escaped;

/// The journal file name inside the journal directory.
pub const WAL_FILE: &str = "jobs.wal";

/// An open, append-only job journal.
pub struct Wal {
    file: Mutex<File>,
}

impl Wal {
    /// Opens (creating as needed) the journal in `dir`, appending to any
    /// records a previous server process left behind.
    ///
    /// # Errors
    ///
    /// IO errors creating the directory or opening the file.
    pub fn open(dir: &Path) -> std::io::Result<Wal> {
        std::fs::create_dir_all(dir)?;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join(WAL_FILE))?;
        Ok(Wal {
            file: Mutex::new(file),
        })
    }

    /// Appends one record line and flushes it to the OS — a SIGKILL
    /// after this call cannot lose the record.
    fn append(&self, line: &str) {
        let mut f = self
            .file
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = writeln!(f, "{line}");
        let _ = f.flush();
    }

    /// Records an accepted job (call before emitting `accepted`).
    pub fn append_job(&self, id: &str, spec_json: &str) {
        self.append(&format!(
            "{{\"wal\":\"job\",\"id\":{},\"spec\":{spec_json}}}",
            json_escaped(id)
        ));
    }

    /// Records a job's terminal outcome (call before emitting the
    /// terminal event).
    pub fn append_terminal(&self, id: &str, outcome: &str) {
        self.append(&format!(
            "{{\"wal\":\"terminal\",\"id\":{},\"outcome\":{}}}",
            json_escaped(id),
            json_escaped(outcome)
        ));
    }
}

/// One unfinished job recovered from the journal.
pub struct RecoveredJob {
    /// The job's original id (reused, so clients correlate).
    pub id: String,
    /// The original submit request, wire-parsed back from the journal.
    pub spec: SubmitRequest,
}

/// What [`replay`] found in a journal directory.
#[derive(Default)]
pub struct Replay {
    /// Accepted jobs with no terminal record, in acceptance order.
    pub unfinished: Vec<RecoveredJob>,
    /// Jobs that reached a terminal outcome (id, outcome).
    pub finished: Vec<(String, String)>,
    /// The highest `job-N` numeric suffix seen — the restarted server
    /// starts assigning ids above it so recovered and new jobs never
    /// collide.
    pub max_numeric_id: u64,
    /// Journal lines that did not parse (torn tail write, manual edits).
    pub skipped_lines: usize,
}

/// Replays the journal in `dir`. A missing journal file is an empty
/// replay, not an error — a fresh directory is a valid cold start.
///
/// # Errors
///
/// IO errors reading an *existing* journal file.
pub fn replay(dir: &Path) -> std::io::Result<Replay> {
    let path: PathBuf = dir.join(WAL_FILE);
    let file = match File::open(&path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Replay::default()),
        Err(e) => return Err(e),
    };
    let mut out = Replay::default();
    // Insertion-ordered: ids keep their acceptance order for re-enqueue.
    let mut jobs: Vec<RecoveredJob> = Vec::new();
    for line in BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let Some((kind, id, v)) = parse_record(&line) else {
            out.skipped_lines += 1;
            continue;
        };
        if let Some(n) = id.strip_prefix("job-").and_then(|s| s.parse::<u64>().ok()) {
            out.max_numeric_id = out.max_numeric_id.max(n);
        }
        match kind {
            RecordKind::Job(spec) => {
                // Re-accepted after a previous recovery: last spec wins.
                jobs.retain(|j| j.id != id);
                jobs.push(RecoveredJob { id, spec: *spec });
            }
            RecordKind::Terminal => {
                let outcome = v
                    .get("outcome")
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string();
                jobs.retain(|j| j.id != id);
                out.finished.push((id, outcome));
            }
        }
    }
    out.unfinished = jobs;
    Ok(out)
}

enum RecordKind {
    Job(Box<SubmitRequest>),
    Terminal,
}

fn parse_record(line: &str) -> Option<(RecordKind, String, Json)> {
    let v = json::parse(line).ok()?;
    let id = v.get("id")?.as_str()?.to_string();
    match v.get("wal")?.as_str()? {
        "job" => {
            let spec = crate::protocol::parse_submit_value(v.get("spec")?).ok()?;
            Some((RecordKind::Job(Box::new(spec)), id, v))
        }
        "terminal" => Some((RecordKind::Terminal, id, v)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobSource;
    use crate::protocol::submit_to_json;
    use crate::queue::Priority;

    fn spec(circuit: &str) -> SubmitRequest {
        SubmitRequest {
            id: None,
            source: JobSource::Suite(circuit.to_string()),
            deadline_ms: None,
            work_limit: Some(500),
            seed: Some(7),
            vectors: None,
            verify: None,
            engines: None,
            partitions: None,
            priority: Priority::Normal,
            resume: None,
            checkpoint: None,
            want_netlist: false,
            want_progress: false,
            panic_attempts: None,
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("gdo_wal_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn journal_round_trips_and_partitions_jobs() {
        let dir = tmp_dir("rt");
        let wal = Wal::open(&dir).unwrap();
        wal.append_job("job-1", &submit_to_json(&spec("9sym")));
        wal.append_job("job-2", &submit_to_json(&spec("rot")));
        wal.append_job("mine", &submit_to_json(&spec("Z5xp1")));
        wal.append_terminal("job-1", "done");
        drop(wal);

        let replay = replay(&dir).unwrap();
        assert_eq!(replay.finished, vec![("job-1".to_string(), "done".into())]);
        let ids: Vec<&str> = replay.unfinished.iter().map(|j| j.id.as_str()).collect();
        assert_eq!(ids, ["job-2", "mine"]);
        assert_eq!(
            replay.unfinished[0].spec.source,
            JobSource::Suite("rot".to_string())
        );
        assert_eq!(replay.unfinished[0].spec.work_limit, Some(500));
        assert_eq!(replay.max_numeric_id, 2);
        assert_eq!(replay.skipped_lines, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_line_is_skipped_not_fatal() {
        let dir = tmp_dir("torn");
        let wal = Wal::open(&dir).unwrap();
        wal.append_job("job-7", &submit_to_json(&spec("9sym")));
        drop(wal);
        // Simulate a crash mid-append: a truncated record on the tail.
        let path = dir.join(WAL_FILE);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"wal\":\"terminal\",\"id\":\"job-");
        std::fs::write(&path, text).unwrap();

        let replay = replay(&dir).unwrap();
        assert_eq!(replay.unfinished.len(), 1);
        assert_eq!(replay.unfinished[0].id, "job-7");
        assert_eq!(replay.skipped_lines, 1);
        assert_eq!(replay.max_numeric_id, 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_journal_is_an_empty_replay() {
        let dir = tmp_dir("cold");
        let replay = replay(&dir).unwrap();
        assert!(replay.unfinished.is_empty());
        assert!(replay.finished.is_empty());
        assert_eq!(replay.max_numeric_id, 0);
    }
}
