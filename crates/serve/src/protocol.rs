//! Re-export of the client↔server wire protocol.
//!
//! The protocol types moved to [`proto::client`] when the serving stack
//! split into gateway and worker processes — `gdo-served`,
//! `gdo-gateway`, and `gdo-submit` all speak the same dialect through
//! that one crate. This alias keeps `crate::protocol::…` paths (and
//! downstream `serve::protocol::…` users) working.

pub use proto::client::{
    parse_request, parse_submit_value, parse_verify, submit_to_json, verify_name, Event, Request,
    SubmitRequest,
};
