//! `gdo-served` — the batch-optimization server.
//!
//! ```text
//! gdo-served [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!            [--admission block|reject] [--library FILE.genlib]
//!            [--work-ceiling UNITS] [--verify POLICY] [--seed N]
//!            [--batch]
//! ```
//!
//! TCP mode (default) prints the bound address on stdout (`listening
//! HOST:PORT`) and serves NDJSON connections until a client sends
//! `{"op":"drain"}`. `--batch` instead reads request lines from stdin,
//! writes events to stdout, and drains at EOF — no socket involved.

use serve::{output_from, Admission, Server, ServerConfig};
use std::io::Write;
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> String {
    "usage: gdo-served [options]\n\
     \n\
     options:\n\
       --addr HOST:PORT         listen address (default 127.0.0.1:0; port 0 = ephemeral)\n\
       --workers N              worker threads (default 2)\n\
       --queue-cap N            bounded queue capacity (default 16)\n\
       --admission block|reject full-queue policy (default block)\n\
       --library FILE           genlib cell library (default: built-in)\n\
       --work-ceiling UNITS     server-wide aggregate optimizer work ceiling\n\
       --verify POLICY          default verify policy: off|final|each|every:N (default final)\n\
       --seed N                 default BPFS seed (default 1995)\n\
       --journal-dir DIR        durable job journal: log accepted jobs and\n\
                                terminals, checkpoint runs, recover on restart\n\
       --retry-max N            retries after a worker panic before a job is\n\
                                poisoned (default 2)\n\
       --checkpoint-every N     snapshot cadence in optimizer rounds (default 4)\n\
       --batch                  serve stdin/stdout NDJSON instead of TCP; drain at EOF\n\
       --help                   print this help\n"
        .to_string()
}

struct Options {
    addr: String,
    batch: bool,
    cfg: ServerConfig,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        addr: "127.0.0.1:0".to_string(),
        batch: false,
        cfg: ServerConfig::default(),
    };
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{}", usage());
                return Ok(None);
            }
            "--addr" => opts.addr = need(&mut it, "--addr")?,
            "--batch" => opts.batch = true,
            "--workers" => {
                opts.cfg.workers = need(&mut it, "--workers")?
                    .parse()
                    .map_err(|_| "--workers needs a positive integer".to_string())?;
                if opts.cfg.workers == 0 {
                    return Err("--workers must be positive".to_string());
                }
            }
            "--queue-cap" => {
                opts.cfg.queue_cap = need(&mut it, "--queue-cap")?
                    .parse()
                    .map_err(|_| "--queue-cap needs a positive integer".to_string())?;
                if opts.cfg.queue_cap == 0 {
                    return Err("--queue-cap must be positive".to_string());
                }
            }
            "--admission" => {
                let v = need(&mut it, "--admission")?;
                opts.cfg.admission = Admission::from_name(&v)
                    .ok_or_else(|| format!("--admission must be block or reject, got {v:?}"))?;
            }
            "--library" => {
                let path = need(&mut it, "--library")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read library {path}: {e}"))?;
                opts.cfg.library =
                    library::parse_genlib(&path, &text).map_err(|e| e.to_string())?;
            }
            "--work-ceiling" => {
                opts.cfg.work_ceiling = Some(
                    need(&mut it, "--work-ceiling")?
                        .parse()
                        .map_err(|_| "--work-ceiling needs an integer".to_string())?,
                );
            }
            "--verify" => {
                opts.cfg.default_verify =
                    serve::protocol::parse_verify(&need(&mut it, "--verify")?)?;
            }
            "--seed" => {
                opts.cfg.default_seed = need(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?;
            }
            "--journal-dir" => {
                opts.cfg.journal_dir = Some(need(&mut it, "--journal-dir")?.into());
            }
            "--retry-max" => {
                opts.cfg.retry_max = need(&mut it, "--retry-max")?
                    .parse()
                    .map_err(|_| "--retry-max needs a non-negative integer".to_string())?;
            }
            "--checkpoint-every" => {
                opts.cfg.checkpoint_every = need(&mut it, "--checkpoint-every")?
                    .parse()
                    .map_err(|_| "--checkpoint-every needs a positive integer".to_string())?;
                if opts.cfg.checkpoint_every == 0 {
                    return Err("--checkpoint-every must be positive".to_string());
                }
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gdo-served: {e}");
            return ExitCode::from(2);
        }
    };
    if opts.batch {
        let server = Server::new(opts.cfg);
        let out = output_from(std::io::stdout());
        server.run_batch(std::io::stdin().lock(), &out);
        return ExitCode::SUCCESS;
    }
    let listener = match TcpListener::bind(&opts.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("gdo-served: cannot bind {}: {e}", opts.addr);
            return ExitCode::from(5);
        }
    };
    match listener.local_addr() {
        Ok(addr) => {
            println!("listening {addr}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("gdo-served: {e}");
            return ExitCode::from(5);
        }
    }
    let server = Arc::new(Server::new(opts.cfg));
    if let Err(e) = server.serve(&listener) {
        eprintln!("gdo-served: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_the_full_flag_set() {
        let opts = parse_args(&argv(&[
            "--addr",
            "127.0.0.1:7199",
            "--workers",
            "4",
            "--queue-cap",
            "8",
            "--admission",
            "reject",
            "--work-ceiling",
            "5000",
            "--verify",
            "every:8",
            "--seed",
            "7",
            "--journal-dir",
            "/tmp/j",
            "--retry-max",
            "5",
            "--checkpoint-every",
            "2",
            "--batch",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(opts.addr, "127.0.0.1:7199");
        assert_eq!(opts.cfg.workers, 4);
        assert_eq!(opts.cfg.queue_cap, 8);
        assert_eq!(opts.cfg.admission, Admission::Reject);
        assert_eq!(opts.cfg.work_ceiling, Some(5000));
        assert_eq!(opts.cfg.default_seed, 7);
        assert_eq!(
            opts.cfg.journal_dir.as_deref(),
            Some(std::path::Path::new("/tmp/j"))
        );
        assert_eq!(opts.cfg.retry_max, 5);
        assert_eq!(opts.cfg.checkpoint_every, 2);
        assert!(opts.batch);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse_args(&argv(&["--workers", "0"])).is_err());
        assert!(parse_args(&argv(&["--queue-cap", "0"])).is_err());
        assert!(parse_args(&argv(&["--admission", "maybe"])).is_err());
        assert!(parse_args(&argv(&["--frobnicate"])).is_err());
        assert!(parse_args(&argv(&["--workers"])).is_err());
        assert!(parse_args(&argv(&["--checkpoint-every", "0"])).is_err());
    }
}
