//! `gdo-submit` — the batch client for `gdo-served`.
//!
//! ```text
//! gdo-submit --addr HOST:PORT [--circuit NAME]... [--file PATH]...
//!            [--deadline-ms N] [--work-limit N] [--seed N] [--vectors N]
//!            [--verify POLICY] [--priority high|normal|low]
//!            [--status] [--cancel ID] [--drain] [--list-circuits]
//! ```
//!
//! Submits one job per `--circuit`/`--file` (budget and policy flags
//! apply to all of them), streams the server's NDJSON events to stdout,
//! and exits once every submitted job reached its terminal event. With
//! `--drain`, a drain request follows the submissions and the client
//! also waits for the `drained` event.
//!
//! Exit codes mirror `gdo-opt`: 0 all done, 4 when any job came back
//! degraded, 1 when any was rejected or failed, 2 usage, 5 connection
//! errors.

use serve::protocol::{parse_verify, submit_to_json, SubmitRequest};
use serve::{JobSource, Priority};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;

fn usage() -> String {
    "usage: gdo-submit --addr HOST:PORT [jobs] [options]\n\
     \n\
     jobs (repeatable, submitted in order):\n\
       --circuit NAME           a workload-suite circuit (see --list-circuits)\n\
       --file PATH              a .bench / .blif netlist file (server-side path)\n\
     \n\
     per-job options (apply to every submitted job):\n\
       --deadline-ms N          wall-clock budget\n\
       --work-limit N           deterministic work-unit budget\n\
       --seed N                 BPFS seed\n\
       --vectors N              BPFS vectors per round\n\
       --verify POLICY          off|final|each|every:N\n\
       --engine LIST            engine pipeline, comma-separated (gdo,resub)\n\
       --partitions N           partitioned optimization with ~N regions\n\
       --priority LANE          high|normal|low (default normal)\n\
       --resume PATH            resume from a snapshot file (server-side path)\n\
       --checkpoint PATH        write run snapshots to PATH (server-side path)\n\
       --with-netlist           return the optimized netlist (mapped BLIF) inline\n\
       --progress               stream per-phase progress events (gateway only)\n\
     \n\
     control:\n\
       --status                 request a status event\n\
       --cancel ID              cancel a job by id\n\
       --drain                  drain the server after the submissions\n\
       --list-circuits          print the workload suite circuit names and exit\n\
       --help                   print this help\n"
        .to_string()
}

#[derive(Debug)]
struct Options {
    addr: Option<String>,
    jobs: Vec<JobSource>,
    template: SubmitRequest,
    status: bool,
    cancels: Vec<String>,
    drain: bool,
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        addr: None,
        jobs: Vec::new(),
        template: SubmitRequest {
            id: None,
            source: JobSource::Suite(String::new()),
            deadline_ms: None,
            work_limit: None,
            seed: None,
            vectors: None,
            verify: None,
            engines: None,
            partitions: None,
            priority: Priority::Normal,
            resume: None,
            checkpoint: None,
            want_netlist: false,
            want_progress: false,
            panic_attempts: None,
        },
        status: false,
        cancels: Vec::new(),
        drain: false,
    };
    let mut it = args.iter();
    let need = |it: &mut std::slice::Iter<'_, String>, flag: &str| {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let parse_u64 = |v: String, flag: &str| {
        v.parse::<u64>()
            .map_err(|_| format!("{flag} needs a non-negative integer"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{}", usage());
                return Ok(None);
            }
            "--list-circuits" => {
                for name in workloads::circuit_names() {
                    println!("{name}");
                }
                return Ok(None);
            }
            "--addr" => opts.addr = Some(need(&mut it, "--addr")?),
            "--circuit" => {
                let name = need(&mut it, "--circuit")?;
                // Validate locally so a typo fails with the full list of
                // valid names before anything reaches the server.
                workloads::lookup_circuit(&name).map_err(|e| e.to_string())?;
                opts.jobs.push(JobSource::Suite(name));
            }
            "--file" => opts
                .jobs
                .push(JobSource::File(need(&mut it, "--file")?.into())),
            "--deadline-ms" => {
                opts.template.deadline_ms =
                    Some(parse_u64(need(&mut it, "--deadline-ms")?, "--deadline-ms")?);
            }
            "--work-limit" => {
                opts.template.work_limit =
                    Some(parse_u64(need(&mut it, "--work-limit")?, "--work-limit")?);
            }
            "--seed" => opts.template.seed = Some(parse_u64(need(&mut it, "--seed")?, "--seed")?),
            "--vectors" => {
                opts.template.vectors =
                    Some(parse_u64(need(&mut it, "--vectors")?, "--vectors")? as usize);
            }
            "--verify" => opts.template.verify = Some(parse_verify(&need(&mut it, "--verify")?)?),
            "--engine" => {
                let list = need(&mut it, "--engine")?;
                // Validate locally so a typo fails with the full list of
                // valid engines before anything reaches the server.
                gdo::EngineId::parse_list(&list).map_err(|e| e.to_string())?;
                opts.template.engines = Some(list);
            }
            "--partitions" => {
                opts.template.partitions =
                    Some(parse_u64(need(&mut it, "--partitions")?, "--partitions")? as usize);
            }
            "--priority" => {
                let v = need(&mut it, "--priority")?;
                opts.template.priority = Priority::from_name(&v)
                    .ok_or_else(|| format!("--priority must be high, normal or low, got {v:?}"))?;
            }
            "--resume" => {
                opts.template.resume = Some(need(&mut it, "--resume")?.into());
            }
            "--checkpoint" => {
                opts.template.checkpoint = Some(need(&mut it, "--checkpoint")?.into());
            }
            "--with-netlist" => opts.template.want_netlist = true,
            "--progress" => opts.template.want_progress = true,
            "--status" => opts.status = true,
            "--cancel" => opts.cancels.push(need(&mut it, "--cancel")?),
            "--drain" => opts.drain = true,
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if opts.addr.is_none() {
        return Err(format!("--addr is required\n{}", usage()));
    }
    if opts.jobs.is_empty() && !opts.status && !opts.drain && opts.cancels.is_empty() {
        return Err("nothing to do: give --circuit/--file, --status, --cancel or --drain".into());
    }
    Ok(Some(opts))
}

fn run(opts: &Options) -> Result<ExitCode, String> {
    let addr = opts.addr.as_deref().expect("checked in parse_args");
    let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone connection: {e}"))?;
    let reader = BufReader::new(stream);

    for source in &opts.jobs {
        let req = SubmitRequest {
            source: source.clone(),
            ..opts.template.clone()
        };
        writeln!(writer, "{}", submit_to_json(&req)).map_err(|e| e.to_string())?;
    }
    for id in &opts.cancels {
        writeln!(
            writer,
            "{{\"op\":\"cancel\",\"id\":{}}}",
            telemetry::json_escaped(id)
        )
        .map_err(|e| e.to_string())?;
    }
    if opts.status {
        writeln!(writer, "{{\"op\":\"status\"}}").map_err(|e| e.to_string())?;
    }
    if opts.drain {
        writeln!(writer, "{{\"op\":\"drain\"}}").map_err(|e| e.to_string())?;
    }
    writer.flush().map_err(|e| e.to_string())?;

    // Pass events through to stdout, tracking what we still wait for:
    // one terminal event per submission, one status event per --status,
    // the drained event when draining.
    let mut terminals_left = opts.jobs.len();
    let mut status_left = u64::from(opts.status);
    let mut drain_left = opts.drain;
    let mut degraded = 0u64;
    let mut bad = 0u64;
    let out = std::io::stdout();
    for line in reader.lines() {
        let line = line.map_err(|e| e.to_string())?;
        {
            let mut out = out.lock();
            let _ = writeln!(out, "{line}");
            let _ = out.flush();
        }
        let event = serve::json::parse(&line)
            .ok()
            .and_then(|v| v.get("event").and_then(|e| e.as_str().map(str::to_string)));
        match event.as_deref() {
            Some("done") => terminals_left = terminals_left.saturating_sub(1),
            Some("degraded") => {
                degraded += 1;
                terminals_left = terminals_left.saturating_sub(1);
            }
            Some("rejected" | "failed" | "cancelled" | "poisoned") => {
                bad += 1;
                terminals_left = terminals_left.saturating_sub(1);
            }
            Some("status") => status_left = status_left.saturating_sub(1),
            Some("drained") => drain_left = false,
            _ => {}
        }
        if terminals_left == 0 && status_left == 0 && !drain_left {
            break;
        }
    }
    if terminals_left > 0 || drain_left {
        return Err("server closed the connection before all jobs finished".to_string());
    }
    Ok(if bad > 0 {
        ExitCode::FAILURE
    } else if degraded > 0 {
        ExitCode::from(4)
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Some(opts)) => match run(&opts) {
            Ok(code) => code,
            Err(e) => {
                eprintln!("gdo-submit: {e}");
                ExitCode::from(5)
            }
        },
        Ok(None) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gdo-submit: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_a_mixed_submission() {
        let opts = parse_args(&argv(&[
            "--addr",
            "127.0.0.1:7199",
            "--circuit",
            "9sym",
            "--file",
            "/tmp/dp96.bench",
            "--work-limit",
            "100",
            "--seed",
            "7",
            "--verify",
            "final",
            "--engine",
            "gdo,resub",
            "--partitions",
            "4",
            "--priority",
            "high",
            "--drain",
        ]))
        .unwrap()
        .unwrap();
        assert_eq!(opts.jobs.len(), 2);
        assert_eq!(opts.jobs[0], JobSource::Suite("9sym".to_string()));
        assert_eq!(opts.template.work_limit, Some(100));
        assert_eq!(opts.template.engines.as_deref(), Some("gdo,resub"));
        assert_eq!(opts.template.partitions, Some(4));
        assert_eq!(opts.template.priority, Priority::High);
        assert!(opts.drain);
        assert!(!opts.template.want_netlist);
        assert!(!opts.template.want_progress);
    }

    #[test]
    fn netlist_and_progress_flags_parse() {
        let opts = parse_args(&argv(&[
            "--addr",
            "x:1",
            "--circuit",
            "9sym",
            "--with-netlist",
            "--progress",
        ]))
        .unwrap()
        .unwrap();
        assert!(opts.template.want_netlist);
        assert!(opts.template.want_progress);
    }

    #[test]
    fn unknown_circuit_fails_fast_with_the_valid_names() {
        let err = parse_args(&argv(&["--addr", "x:1", "--circuit", "nope"])).unwrap_err();
        assert!(err.contains("valid names"), "{err}");
        assert!(err.contains("Z5xp1"), "{err}");
    }

    #[test]
    fn unknown_engine_fails_fast_with_the_valid_names() {
        let err = parse_args(&argv(&[
            "--addr",
            "x:1",
            "--circuit",
            "9sym",
            "--engine",
            "frob",
        ]))
        .unwrap_err();
        assert!(err.contains("valid engines"), "{err}");
        assert!(err.contains("resub"), "{err}");
    }

    #[test]
    fn requires_an_addr_and_something_to_do() {
        assert!(parse_args(&argv(&["--circuit", "9sym"])).is_err());
        assert!(parse_args(&argv(&["--addr", "x:1"])).is_err());
        // Control-only invocations are fine.
        assert!(parse_args(&argv(&["--addr", "x:1", "--status"]))
            .unwrap()
            .is_some());
        assert!(parse_args(&argv(&["--addr", "x:1", "--drain"]))
            .unwrap()
            .is_some());
    }
}
