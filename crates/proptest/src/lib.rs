//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of proptest it actually uses: `Strategy` with `prop_map` /
//! `prop_flat_map`, integer-range and tuple strategies,
//! `collection::vec`, `bool::ANY`, `Just`, `prop_oneof!`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros backed by a
//! deterministic runner.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs'
//!   `Debug` representation instead of a minimized counterexample.
//! * **Deterministic seeding.** The RNG stream is a function of the test
//!   name (override with `PROPTEST_SEED=<u64>` to explore other streams),
//!   so CI failures always reproduce locally.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Size bounds for generated collections (half-open or inclusive).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// A strategy generating `Vec`s of an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() as usize) % span;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The uniform boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates `true` and `false` with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The glob import every proptest consumer starts with.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines property tests: each `fn` runs its body over `Config::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {} of {}: {}\ninputs: {:#?}",
                            stringify!($name),
                            case,
                            config.cases,
                            e,
                            ($(&$arg,)+)
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current generated case (with optional
/// formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` that fails the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone)]
    struct Pair {
        a: u8,
        b: Vec<usize>,
    }

    fn pair_strategy() -> impl Strategy<Value = Pair> {
        (0u8..10, crate::collection::vec(0usize..5, 1..4)).prop_map(|(a, b)| Pair { a, b })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in 2u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..=4).contains(&y));
        }

        #[test]
        fn composite_strategies_compose(p in pair_strategy(), flag in crate::bool::ANY) {
            prop_assert!(p.a < 10);
            prop_assert!((1..=3).contains(&p.b.len()));
            prop_assert!(p.b.iter().all(|&v| v < 5));
            let _ = flag;
        }

        #[test]
        fn flat_map_depends_on_outer(v in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0usize..100, n..=n)
        })) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn oneof_covers_all_arms(choice in prop_oneof![
            Just(0usize),
            (1usize..3).prop_map(|v| v),
            Just(9usize),
        ]) {
            prop_assert!(choice == 0 || choice == 1 || choice == 2 || choice == 9);
        }
    }

    #[test]
    fn deterministic_streams_per_test_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        let mut c = TestRng::for_test("y");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
