//! The deterministic case runner behind the `proptest!` macro.

use std::fmt;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of generated cases per test function.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` generated inputs.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 64 }
    }
}

/// A failed generated case (what `prop_assert!` produces and `?`
/// propagates).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps a failure message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }

    /// Upstream-compatible alias of [`fail`](Self::fail).
    #[must_use]
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// The generator stream strategies draw from (xoshiro256++).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A stream keyed on the test name (so every test explores its own
    /// deterministic sequence), overridable with `PROPTEST_SEED`.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0x6a09_e667_f3bc_c908);
        // FNV-1a over the name, mixed with the base seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self::from_seed(base ^ h)
    }

    /// A stream from an explicit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
