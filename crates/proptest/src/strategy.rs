//! The `Strategy` trait and the combinators the workspace uses.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a deterministic function of the runner's RNG stream.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice over same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let pick = (rng.next_u64() as usize) % self.options.len();
        self.options[pick].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = u128::from(rng.next_u64()) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = u128::from(rng.next_u64()) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
