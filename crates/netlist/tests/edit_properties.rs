//! Property tests for the netlist editing engine: arbitrary legal edit
//! sequences must preserve every structural invariant, and rejected edits
//! must leave the netlist untouched.

use netlist::{Branch, GateKind, Netlist, NetlistError, SignalId};
use proptest::prelude::*;

/// A deterministic seed circuit with some depth and fanout.
fn seed_netlist() -> Netlist {
    let mut nl = Netlist::new("seed");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let c = nl.add_input("c");
    let d = nl.add_input("d");
    let g1 = nl.add_gate(GateKind::And, &[a, b]).unwrap();
    let g2 = nl.add_gate(GateKind::Or, &[g1, c]).unwrap();
    let g3 = nl.add_gate(GateKind::Xor, &[g1, d]).unwrap();
    let g4 = nl.add_gate(GateKind::Nand, &[g2, g3]).unwrap();
    let g5 = nl.add_gate(GateKind::Not, &[g4]).unwrap();
    nl.add_output("y", g5);
    nl.add_output("z", g2);
    nl
}

/// One random edit operation, encoded with indices resolved at runtime.
#[derive(Debug, Clone)]
enum Edit {
    AddGate(u8, Vec<usize>),
    RewireBranch { cell: usize, pin: usize, to: usize },
    SubstituteStem { from: usize, to: usize },
    Prune,
    Sweep,
    Strash,
}

fn edit_strategy() -> impl Strategy<Value = Edit> {
    prop_oneof![
        (0u8..6, proptest::collection::vec(0usize..64, 1..4))
            .prop_map(|(k, f)| Edit::AddGate(k, f)),
        (0usize..64, 0usize..4, 0usize..64).prop_map(|(cell, pin, to)| Edit::RewireBranch {
            cell,
            pin,
            to
        }),
        (0usize..64, 0usize..64).prop_map(|(from, to)| Edit::SubstituteStem { from, to }),
        Just(Edit::Prune),
        Just(Edit::Sweep),
        Just(Edit::Strash),
    ]
}

fn live_signals(nl: &Netlist) -> Vec<SignalId> {
    nl.signals().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of edits — including ones the netlist rejects — keeps
    /// validate() green.
    #[test]
    fn edits_preserve_invariants(edits in proptest::collection::vec(edit_strategy(), 1..24)) {
        let mut nl = seed_netlist();
        for e in &edits {
            let pool = live_signals(&nl);
            prop_assert!(!pool.is_empty());
            let pick = |i: usize| pool[i % pool.len()];
            match e {
                Edit::AddGate(k, fanin_refs) => {
                    let kind = match k % 6 {
                        0 => GateKind::And,
                        1 => GateKind::Or,
                        2 => GateKind::Nand,
                        3 => GateKind::Xor,
                        4 => GateKind::Not,
                        _ => GateKind::Nor,
                    };
                    let arity = if kind == GateKind::Not { 1 } else { fanin_refs.len().clamp(2, 4) };
                    let fanins: Vec<SignalId> =
                        (0..arity).map(|i| pick(*fanin_refs.get(i).unwrap_or(&i))).collect();
                    let _ = nl.add_gate(kind, &fanins);
                }
                Edit::RewireBranch { cell, pin, to } => {
                    let cell = pick(*cell);
                    let branch = Branch { cell, pin: *pin as u32 };
                    // May fail (pin range, cycle) — failure must not corrupt.
                    let _ = nl.rewire_branch(branch, pick(*to));
                }
                Edit::SubstituteStem { from, to } => {
                    let _ = nl.substitute_stem(pick(*from), pick(*to));
                }
                Edit::Prune => {
                    nl.prune_dangling();
                }
                Edit::Sweep => {
                    nl.sweep().expect("acyclic by construction");
                }
                Edit::Strash => {
                    nl.strash().expect("acyclic by construction");
                }
            }
            nl.validate().unwrap_or_else(|err| panic!("after {e:?}: {err}"));
        }
    }

    /// Rejected rewires leave the netlist byte-identical.
    #[test]
    fn rejected_edits_are_no_ops(to_pick in 0usize..8) {
        let mut nl = seed_netlist();
        let g4 = nl.find("a").unwrap();
        let pool = live_signals(&nl);
        let target = pool[to_pick % pool.len()];
        let before = format!("{nl:?}");
        // Rewiring an input's (nonexistent) pin always fails.
        let result = nl.rewire_branch(Branch { cell: g4, pin: 9 }, target);
        let rejected = matches!(result, Err(NetlistError::PinOutOfRange { .. }));
        prop_assert!(rejected);
        prop_assert_eq!(before, format!("{nl:?}"));
    }

    /// Substituting a stem by itself or by something in its fanout never
    /// changes the circuit.
    #[test]
    fn cycle_rejections_preserve_function(idx in 0usize..16) {
        let mut nl = seed_netlist();
        let pool = live_signals(&nl);
        let s = pool[idx % pool.len()];
        let tfo: Vec<SignalId> = nl.transitive_fanout(s).iter().collect();
        if let Some(&bad) = tfo.first() {
            let reference = nl.clone();
            let result = nl.substitute_stem(s, bad);
            let rejected = matches!(result, Err(NetlistError::WouldCycle { .. }));
            prop_assert!(rejected);
            prop_assert!(reference.equiv_exhaustive(&nl).expect("small"));
        }
    }
}
