//! Property tests for `Netlist::structural_digest`: the digest is the
//! result-cache key of the serving gateway, so its soundness contract —
//! isomorphic netlists hash equal, structural edits change the hash —
//! is tested over random DAGs, random insertion orders, and random
//! renamings rather than hand-picked examples.

use netlist::{GateKind, Netlist};
use proptest::prelude::*;

/// An abstract DAG: node 0..inputs are PIs; each gate lists the kind
/// index and the (earlier) nodes it reads. Outputs pick arbitrary nodes.
#[derive(Debug, Clone)]
struct Spec {
    inputs: usize,
    gates: Vec<(u8, Vec<usize>)>,
    outputs: Vec<usize>,
}

fn kind_of(k: u8) -> GateKind {
    match k % 6 {
        0 => GateKind::And,
        1 => GateKind::Or,
        2 => GateKind::Nand,
        3 => GateKind::Nor,
        4 => GateKind::Xor,
        _ => GateKind::Not,
    }
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (2usize..6, 1usize..12).prop_flat_map(|(inputs, n_gates)| {
        let gates = proptest::collection::vec(
            (0u8..6, proptest::collection::vec(0usize..64, 1..4)),
            n_gates,
        );
        let outputs = proptest::collection::vec(0usize..64, 1..4);
        (Just(inputs), gates, outputs).prop_map(|(inputs, gates, outputs)| Spec {
            inputs,
            gates,
            outputs,
        })
    })
}

/// Builds the spec into a netlist. `order_seed` picks a linear extension
/// of the gate DAG (insertion order), `salt` renames every signal, and
/// `mirror` reverses commutative fanin lists and the PI insertion order
/// — none of which may change the structural digest.
fn build(spec: &Spec, order_seed: u64, salt: u64, mirror: bool) -> Netlist {
    let mut nl = Netlist::new("prop");
    let total = spec.inputs + spec.gates.len();
    let mut ids = vec![None; total];
    let mut pi_order: Vec<usize> = (0..spec.inputs).collect();
    if mirror {
        pi_order.reverse();
    }
    for i in pi_order {
        ids[i] = Some(nl.add_input(format!("s{salt}_{i}")));
    }
    // Resolve each gate's fanin node indices (clamped into range and to
    // strictly-earlier nodes so the spec is always a DAG).
    let deps: Vec<Vec<usize>> = spec
        .gates
        .iter()
        .enumerate()
        .map(|(g, (_, fanins))| {
            let node = spec.inputs + g;
            fanins.iter().map(|&f| f % node).collect()
        })
        .collect();
    // Insert gates along a pseudo-random linear extension: repeatedly
    // pick a ready gate (all deps inserted) at a seed-driven position.
    let mut state = order_seed | 1;
    let mut remaining: Vec<usize> = (0..spec.gates.len()).collect();
    while !remaining.is_empty() {
        let ready: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&g| deps[g].iter().all(|&d| ids[d].is_some()))
            .collect();
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let pick = ready[(state >> 33) as usize % ready.len()];
        remaining.retain(|&g| g != pick);
        let (k, _) = spec.gates[pick];
        let kind = kind_of(k);
        let mut fanins: Vec<_> = if kind == GateKind::Not {
            vec![ids[deps[pick][0]].unwrap()]
        } else {
            let mut f: Vec<_> = deps[pick].iter().map(|&d| ids[d].unwrap()).collect();
            if f.len() < 2 {
                f.push(f[0]);
            }
            f
        };
        if mirror && kind.is_commutative() {
            fanins.reverse();
        }
        let node = spec.inputs + pick;
        ids[node] = Some(nl.add_gate(kind, &fanins).unwrap());
    }
    for (i, &o) in spec.outputs.iter().enumerate() {
        nl.add_output(format!("o{salt}_{i}"), ids[o % total].unwrap());
    }
    nl
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Isomorphic netlists — same DAG under renamed signals, permuted
    /// insertion order, reversed PIs, and reversed commutative fanins —
    /// produce equal digests.
    #[test]
    fn isomorphic_netlists_hash_equal(
        spec in spec_strategy(),
        seed_a in 0u64..u64::MAX,
        seed_b in 0u64..u64::MAX,
    ) {
        let a = build(&spec, seed_a, 7, false);
        let b = build(&spec, seed_b, 991, true);
        prop_assert_eq!(
            a.structural_digest().unwrap(),
            b.structural_digest().unwrap()
        );
    }

    /// Flipping one gate's kind changes the digest: the hash reflects
    /// structure, not just shape.
    #[test]
    fn kind_flip_changes_digest(spec in spec_strategy(), seed in 0u64..u64::MAX, at in 0usize..64) {
        let base = build(&spec, seed, 7, false);
        let mut flipped = spec.clone();
        let g = at % flipped.gates.len();
        // And <-> Or (both commutative, same arity class) so only the
        // kind differs, never the wiring.
        flipped.gates[g].0 = match kind_of(flipped.gates[g].0) {
            GateKind::And => 1,
            _ => 0,
        };
        let other = build(&flipped, seed, 7, false);
        prop_assert!(
            base.structural_digest().unwrap() != other.structural_digest().unwrap()
        );
    }

    /// The digest is a pure function of structure: a clone hashes the
    /// same as its original.
    #[test]
    fn digest_is_deterministic_across_clones(spec in spec_strategy(), seed in 0u64..u64::MAX) {
        let a = build(&spec, seed, 7, false);
        let b = a.clone();
        prop_assert_eq!(
            a.structural_digest().unwrap(),
            b.structural_digest().unwrap()
        );
    }
}
