//! Edit journaling: the change feed that drives incremental timing.
//!
//! Every structural mutation of a [`Netlist`](crate::Netlist) — allocating
//! a signal, rewiring a branch, substituting a stem, rebinding a cell,
//! deleting a gate — marks the affected signals in an [`EditDelta`] when
//! recording is on. A consumer (the `timing` crate's persistent graph)
//! drains the journal with [`Netlist::take_delta`](crate::Netlist) and
//! re-propagates timing only through the cones reachable from the touched
//! signals, instead of re-analyzing the whole netlist.
//!
//! A signal is *touched* when anything that could move its timing changed:
//! its fanin list, its fanout set (load-dependent delay models care), its
//! library binding, or its liveness (fresh allocation — including recycled
//! slots — and deletion).

use crate::{SignalId, SignalSet};

/// The deduplicated set of signals touched by a batch of netlist edits.
///
/// Produced by [`Netlist::take_delta`](crate::Netlist) after a
/// [`Netlist::record_edits`](crate::Netlist) window; consumed by
/// `timing::TimingGraph::update`.
///
/// # Example
///
/// ```
/// use netlist::{GateKind, Netlist};
///
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// nl.record_edits();
/// let g = nl.add_gate(GateKind::Not, &[a])?;
/// let delta = nl.take_delta();
/// // Both the new gate and its fanin (whose fanout set grew) are touched.
/// assert!(delta.signals().contains(&g));
/// assert!(delta.signals().contains(&a));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct EditDelta {
    touched: Vec<SignalId>,
    seen: SignalSet,
}

impl EditDelta {
    /// Creates an empty delta.
    #[must_use]
    pub fn new() -> Self {
        EditDelta::default()
    }

    /// The touched signals, in first-touch order, without duplicates.
    ///
    /// Ids may refer to signals that have since been deleted (or deleted
    /// and recycled); consumers must re-check liveness against the
    /// netlist.
    #[must_use]
    pub fn signals(&self) -> &[SignalId] {
        &self.touched
    }

    /// Number of distinct touched signals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.touched.len()
    }

    /// Returns `true` if no edit was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.touched.is_empty()
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, s: SignalId) -> bool {
        self.seen.contains(s)
    }

    /// Marks `s` as touched (idempotent).
    pub(crate) fn record(&mut self, s: SignalId) {
        if self.seen.insert(s) {
            self.touched.push(s);
        }
    }

    /// Folds another delta into this one.
    pub fn merge(&mut self, other: &EditDelta) {
        for &s in &other.touched {
            self.record(s);
        }
    }

    /// Empties the delta while keeping allocations.
    pub fn clear(&mut self) {
        self.touched.clear();
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Branch, GateKind, Netlist};

    #[test]
    fn records_are_deduplicated() {
        let mut d = EditDelta::new();
        let s = SignalId::from_index(3);
        d.record(s);
        d.record(s);
        assert_eq!(d.len(), 1);
        assert!(d.contains(s));
        d.clear();
        assert!(d.is_empty());
    }

    #[test]
    fn merge_unions_touched_sets() {
        let mut a = EditDelta::new();
        a.record(SignalId::from_index(0));
        let mut b = EditDelta::new();
        b.record(SignalId::from_index(0));
        b.record(SignalId::from_index(5));
        a.merge(&b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn journal_is_off_by_default() {
        let mut nl = Netlist::new("t");
        assert!(!nl.is_recording());
        let a = nl.add_input("a");
        let _g = nl.add_gate(GateKind::Not, &[a]).unwrap();
        assert!(nl.take_delta().is_empty());
    }

    #[test]
    fn take_delta_drains_and_keeps_recording() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        nl.record_edits();
        let g = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        let first = nl.take_delta();
        assert!(first.contains(g) && first.contains(a));
        assert!(nl.is_recording());
        let h = nl.add_gate(GateKind::Not, &[g]).unwrap();
        let second = nl.take_delta();
        assert!(second.contains(h) && second.contains(g));
        assert!(!second.contains(a));
    }

    #[test]
    fn rewire_touches_both_sources_and_consumer() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        nl.add_output("y", g);
        nl.record_edits();
        nl.rewire_branch(Branch { cell: g, pin: 1 }, c).unwrap();
        let d = nl.take_delta();
        assert!(d.contains(b), "old source lost a fanout");
        assert!(d.contains(c), "new source gained a fanout");
        assert!(d.contains(g), "consumer's fanin changed");
        assert!(!d.contains(a));
    }

    #[test]
    fn substitute_touches_stems_and_consumers() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let h = nl.add_gate(GateKind::And, &[g, b]).unwrap();
        nl.add_output("y", h);
        nl.record_edits();
        nl.substitute_stem(g, b).unwrap();
        let d = nl.take_delta();
        for s in [g, b, h] {
            assert!(d.contains(s), "{s} should be touched");
        }
    }

    #[test]
    fn delete_touches_gate_and_fanins() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Not, &[a]).unwrap();
        nl.record_edits();
        nl.delete_gate(g).unwrap();
        let d = nl.take_delta();
        assert!(d.contains(g) && d.contains(a));
    }

    #[test]
    fn recycled_slots_are_touched_on_realloc() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Not, &[a]).unwrap();
        nl.delete_gate(g).unwrap();
        nl.record_edits();
        let h = nl.add_gate(GateKind::Buf, &[a]).unwrap();
        assert_eq!(h, g, "slot should be recycled");
        assert!(nl.take_delta().contains(h));
    }

    #[test]
    fn set_lib_and_add_output_are_edits() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::Not, &[a]).unwrap();
        nl.record_edits();
        nl.set_lib(g, Some(7)).unwrap();
        nl.add_output("y", g);
        let d = nl.take_delta();
        assert!(d.contains(g));
    }

    #[test]
    fn sweep_records_through_primitives() {
        // `sweep` rewrites via substitute_stem/delete_gate internally, so
        // a recording window around it captures every affected signal.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::And, &[a, a]).unwrap(); // AND(a,a) = a
        let h = nl.add_gate(GateKind::Not, &[g]).unwrap();
        nl.add_output("y", h);
        nl.record_edits();
        let changed = nl.sweep().unwrap();
        assert!(changed > 0);
        let d = nl.take_delta();
        assert!(d.contains(g), "simplified-away gate is touched");
        assert!(d.contains(h), "consumer of the rewrite is touched");
    }

    #[test]
    fn stop_recording_discards_the_journal() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        nl.record_edits();
        let _ = nl.add_gate(GateKind::Not, &[a]).unwrap();
        nl.stop_recording();
        assert!(!nl.is_recording());
        assert!(nl.take_delta().is_empty());
    }
}
