use crate::{Branch, Cell, EditDelta, Fanout, GateKind, NetlistError, SignalId};
use std::collections::HashMap;

/// A primary output: a named binding to a driving signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrimaryOutput {
    pub(crate) name: String,
    pub(crate) driver: SignalId,
}

impl PrimaryOutput {
    /// The output port name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The signal driving this output.
    #[must_use]
    pub fn driver(&self) -> SignalId {
        self.driver
    }
}

/// A mutable combinational netlist: the substrate of the whole GDO system.
///
/// See the [crate-level documentation](crate) for the signal model. All
/// editing operations keep the per-signal fanout tables consistent;
/// [`Netlist::validate`](crate::Netlist::validate) cross-checks every
/// invariant and is run liberally by the test suites.
#[derive(Debug, Clone, Default)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) cells: Vec<Option<Cell>>,
    pub(crate) fanouts: Vec<Vec<Fanout>>,
    pub(crate) pis: Vec<SignalId>,
    pub(crate) pos: Vec<PrimaryOutput>,
    pub(crate) by_name: HashMap<String, SignalId>,
    pub(crate) free: Vec<u32>,
    pub(crate) journal: Option<EditDelta>,
}

impl std::fmt::Display for Netlist {
    /// Compact human-readable listing: header, then one line per gate in
    /// topological order. Intended for debugging and small examples; use
    /// the `formats` crate for interchange.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "netlist {} ({})", self.name, self.stats())?;
        let inputs: Vec<String> = self.pis.iter().map(|s| s.to_string()).collect();
        writeln!(f, "  inputs: {}", inputs.join(" "))?;
        match self.topo_order() {
            Ok(order) => {
                for s in order {
                    let cell = self.cell(s);
                    if cell.kind().is_source() && cell.kind() == GateKind::Input {
                        continue;
                    }
                    let fanins: Vec<String> = cell.fanins().iter().map(|x| x.to_string()).collect();
                    write!(f, "  {s} = {}({})", cell.kind(), fanins.join(", "))?;
                    if let Some(name) = cell.name() {
                        write!(f, "  # {name}")?;
                    }
                    writeln!(f)?;
                }
            }
            Err(_) => writeln!(f, "  <cyclic>")?,
        }
        for po in &self.pos {
            writeln!(f, "  output {} = {}", po.name, po.driver)?;
        }
        Ok(())
    }
}

impl Netlist {
    /// Creates an empty netlist with the given design name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            ..Netlist::default()
        }
    }

    /// The design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the design.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    fn alloc(&mut self, cell: Cell) -> SignalId {
        let id = if let Some(slot) = self.free.pop() {
            let id = SignalId::from_index(slot as usize);
            self.cells[slot as usize] = Some(cell);
            self.fanouts[slot as usize].clear();
            id
        } else {
            let id = SignalId::from_index(self.cells.len());
            self.cells.push(Some(cell));
            self.fanouts.push(Vec::new());
            id
        };
        self.touch(id);
        id
    }

    /// Starts (or restarts, clearing any pending delta) edit journaling:
    /// subsequent structural mutations mark the signals they affect, to be
    /// drained with [`take_delta`](Self::take_delta).
    ///
    /// Journaling is off by default; a netlist without an active journal
    /// pays one branch per edit.
    pub fn record_edits(&mut self) {
        match &mut self.journal {
            Some(delta) => delta.clear(),
            None => self.journal = Some(EditDelta::new()),
        }
    }

    /// Returns the delta recorded since [`record_edits`](Self::record_edits)
    /// (or the last `take_delta`) and keeps recording into a fresh one.
    ///
    /// Returns an empty delta when journaling is off.
    pub fn take_delta(&mut self) -> EditDelta {
        match &mut self.journal {
            Some(delta) => std::mem::take(delta),
            None => EditDelta::new(),
        }
    }

    /// Returns `true` while edit journaling is active.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.journal.is_some()
    }

    /// Stops journaling and discards any pending delta.
    pub fn stop_recording(&mut self) {
        self.journal = None;
    }

    /// Marks `s` as touched in the active journal, if any. Every mutation
    /// primitive calls this so composite edits (`sweep`, rewrites) are
    /// journaled for free.
    pub(crate) fn touch(&mut self, s: SignalId) {
        if let Some(delta) = &mut self.journal {
            delta.record(s);
        }
    }

    /// Adds a primary input with the given name.
    ///
    /// # Panics
    ///
    /// Panics if the name is already bound; use
    /// [`try_add_input`](Self::try_add_input) for a fallible variant.
    pub fn add_input(&mut self, name: impl Into<String>) -> SignalId {
        self.try_add_input(name).expect("duplicate input name")
    }

    /// Adds a primary input with the given name.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateName`] if the name is already bound.
    pub fn try_add_input(&mut self, name: impl Into<String>) -> Result<SignalId, NetlistError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        let id = self.alloc(Cell {
            kind: GateKind::Input,
            fanins: Vec::new(),
            lib: None,
            name: Some(name.clone()),
        });
        self.by_name.insert(name, id);
        self.pis.push(id);
        Ok(id)
    }

    /// Adds a gate of the given kind over existing signals and returns its
    /// output signal.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::ArityMismatch`] if the fanin count is not accepted
    ///   by `kind`.
    /// * [`NetlistError::DeadSignal`] if a fanin does not exist.
    pub fn add_gate(
        &mut self,
        kind: GateKind,
        fanins: &[SignalId],
    ) -> Result<SignalId, NetlistError> {
        if !kind.arity().accepts(fanins.len()) {
            return Err(NetlistError::ArityMismatch {
                kind: kind.mnemonic(),
                got: fanins.len(),
            });
        }
        for &f in fanins {
            if !self.is_live(f) {
                return Err(NetlistError::DeadSignal(f));
            }
        }
        let id = self.alloc(Cell {
            kind,
            fanins: fanins.to_vec(),
            lib: None,
            name: None,
        });
        for (pin, &f) in fanins.iter().enumerate() {
            self.fanouts[f.index()].push(Fanout::Gate {
                cell: id,
                pin: pin as u32,
            });
            self.touch(f);
        }
        Ok(id)
    }

    /// Adds a named gate; the name becomes findable via
    /// [`find`](Self::find).
    ///
    /// # Errors
    ///
    /// Same as [`add_gate`](Self::add_gate), plus
    /// [`NetlistError::DuplicateName`].
    pub fn add_named_gate(
        &mut self,
        name: impl Into<String>,
        kind: GateKind,
        fanins: &[SignalId],
    ) -> Result<SignalId, NetlistError> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(NetlistError::DuplicateName(name));
        }
        let id = self.add_gate(kind, fanins)?;
        self.cells[id.index()].as_mut().expect("just added").name = Some(name.clone());
        self.by_name.insert(name, id);
        Ok(id)
    }

    /// Declares `driver` to be a primary output named `name`; returns the
    /// output's index.
    pub fn add_output(&mut self, name: impl Into<String>, driver: SignalId) -> usize {
        let index = self.pos.len();
        self.pos.push(PrimaryOutput {
            name: name.into(),
            driver,
        });
        self.fanouts[driver.index()].push(Fanout::Po(index as u32));
        self.touch(driver);
        index
    }

    /// Returns a constant-0 signal, creating the cell on first use.
    pub fn const0(&mut self) -> SignalId {
        self.find_const(GateKind::Const0)
    }

    /// Returns a constant-1 signal, creating the cell on first use.
    pub fn const1(&mut self) -> SignalId {
        self.find_const(GateKind::Const1)
    }

    fn find_const(&mut self, kind: GateKind) -> SignalId {
        for (i, c) in self.cells.iter().enumerate() {
            if let Some(c) = c {
                if c.kind == kind {
                    return SignalId::from_index(i);
                }
            }
        }
        self.alloc(Cell {
            kind,
            fanins: Vec::new(),
            lib: None,
            name: None,
        })
    }

    /// Returns `true` if the signal exists and has not been deleted.
    #[must_use]
    pub fn is_live(&self, s: SignalId) -> bool {
        self.cells.get(s.index()).is_some_and(Option::is_some)
    }

    /// Returns the cell driving `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is dead; use [`try_cell`](Self::try_cell) for a
    /// fallible variant.
    #[must_use]
    pub fn cell(&self, s: SignalId) -> &Cell {
        self.try_cell(s).expect("dead signal")
    }

    /// Returns the cell driving `s`, or an error if `s` is dead.
    ///
    /// # Errors
    ///
    /// [`NetlistError::DeadSignal`] if `s` does not exist.
    pub fn try_cell(&self, s: SignalId) -> Result<&Cell, NetlistError> {
        self.cells
            .get(s.index())
            .and_then(Option::as_ref)
            .ok_or(NetlistError::DeadSignal(s))
    }

    /// Shorthand for `self.cell(s).kind()`.
    #[must_use]
    pub fn kind(&self, s: SignalId) -> GateKind {
        self.cell(s).kind
    }

    /// Shorthand for `self.cell(s).fanins()`.
    #[must_use]
    pub fn fanins(&self, s: SignalId) -> &[SignalId] {
        &self.cell(s).fanins
    }

    /// The fanout connections of stem `s` (gate pins and primary outputs).
    #[must_use]
    pub fn fanouts(&self, s: SignalId) -> &[Fanout] {
        &self.fanouts[s.index()]
    }

    /// Number of fanout connections (gate pins plus primary outputs).
    #[must_use]
    pub fn fanout_count(&self, s: SignalId) -> usize {
        self.fanouts[s.index()].len()
    }

    /// The signal currently feeding a branch.
    ///
    /// # Errors
    ///
    /// [`NetlistError::DeadSignal`] / [`NetlistError::PinOutOfRange`] when
    /// the branch does not identify a live connection.
    pub fn branch_source(&self, branch: Branch) -> Result<SignalId, NetlistError> {
        let cell = self.try_cell(branch.cell)?;
        cell.fanins
            .get(branch.pin as usize)
            .copied()
            .ok_or(NetlistError::PinOutOfRange {
                cell: branch.cell,
                pin: branch.pin,
            })
    }

    /// The primary inputs, in declaration order.
    #[must_use]
    pub fn inputs(&self) -> &[SignalId] {
        &self.pis
    }

    /// The primary outputs, in declaration order.
    #[must_use]
    pub fn outputs(&self) -> &[PrimaryOutput] {
        &self.pos
    }

    /// Looks up a signal by name.
    ///
    /// # Errors
    ///
    /// [`NetlistError::UnknownName`] if nothing is bound to `name`.
    pub fn find(&self, name: &str) -> Result<SignalId, NetlistError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| NetlistError::UnknownName(name.to_string()))
    }

    /// Sets or replaces the library binding tag of a gate.
    ///
    /// # Errors
    ///
    /// [`NetlistError::DeadSignal`] if `s` does not exist.
    pub fn set_lib(&mut self, s: SignalId, lib: Option<u32>) -> Result<(), NetlistError> {
        match self.cells.get_mut(s.index()).and_then(Option::as_mut) {
            Some(cell) => {
                cell.lib = lib;
                self.touch(s);
                Ok(())
            }
            None => Err(NetlistError::DeadSignal(s)),
        }
    }

    /// Iterates over all live signals (inputs, constants and gates) in id
    /// order.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(i, _)| SignalId::from_index(i))
    }

    /// Iterates over all live *gate* signals (excluding inputs and
    /// constants) in id order.
    pub fn gates(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.as_ref().is_some_and(|c| !c.kind.is_source()))
            .map(|(i, _)| SignalId::from_index(i))
    }

    /// Upper bound (exclusive) on live signal indices; sized for dense
    /// per-signal side tables.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Builds a collision-free name per live signal, indexed by
    /// [`SignalId::index`]: the explicit name when one exists, otherwise
    /// `{prefix}{index}` (uniquified with trailing underscores if an
    /// explicit name already uses that string). Netlist writers use this
    /// so freshly inserted unnamed gates can never collide with named
    /// nets.
    ///
    /// ```
    /// use netlist::{Netlist, GateKind};
    /// # fn main() -> Result<(), netlist::NetlistError> {
    /// let mut nl = Netlist::new("t");
    /// let a = nl.add_input("n1"); // explicit name shadowing a slot name
    /// let g = nl.add_gate(GateKind::Not, &[a])?;
    /// let names = nl.unique_names("n");
    /// assert_eq!(names[a.index()], "n1");
    /// assert_ne!(names[g.index()], "n1");
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn unique_names(&self, prefix: &str) -> Vec<String> {
        let used: std::collections::HashSet<&str> =
            self.by_name.keys().map(String::as_str).collect();
        let mut out = vec![String::new(); self.capacity()];
        // Owned uniquified synthetics (kept separate so `used` can borrow
        // from by_name).
        let mut synth_used: std::collections::HashSet<String> = std::collections::HashSet::new();
        for s in self.signals() {
            if let Some(name) = self.cell(s).name() {
                out[s.index()] = name.to_string();
                continue;
            }
            let mut candidate = format!("{prefix}{}", s.index());
            while used.contains(candidate.as_str()) || synth_used.contains(&candidate) {
                candidate.push('_');
            }
            out[s.index()] = candidate.clone();
            synth_used.insert(candidate);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_fig1() {
        let mut nl = Netlist::new("fig1");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let e = nl.add_gate(GateKind::Not, &[c]).unwrap();
        let f = nl.add_gate(GateKind::Or, &[d, e]).unwrap();
        nl.add_output("f", f);

        assert_eq!(nl.inputs(), &[a, b, c]);
        assert_eq!(nl.outputs().len(), 1);
        assert_eq!(nl.outputs()[0].driver(), f);
        assert_eq!(nl.fanins(f), &[d, e]);
        assert_eq!(nl.fanout_count(a), 1);
        assert_eq!(nl.fanout_count(d), 1);
        assert_eq!(nl.fanouts(d), &[Fanout::Gate { cell: f, pin: 0 }]);
        assert_eq!(nl.find("a").unwrap(), a);
        assert!(nl.find("zzz").is_err());
    }

    #[test]
    fn arity_is_enforced() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let err = nl.add_gate(GateKind::And, &[a]).unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
        let err = nl.add_gate(GateKind::Not, &[a, a]).unwrap_err();
        assert!(matches!(err, NetlistError::ArityMismatch { .. }));
    }

    #[test]
    fn dead_fanin_rejected() {
        let mut nl = Netlist::new("t");
        let bogus = SignalId::from_index(42);
        let err = nl.add_gate(GateKind::Not, &[bogus]).unwrap_err();
        assert_eq!(err, NetlistError::DeadSignal(bogus));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut nl = Netlist::new("t");
        nl.add_input("a");
        assert!(matches!(
            nl.try_add_input("a"),
            Err(NetlistError::DuplicateName(_))
        ));
    }

    #[test]
    fn constants_are_shared() {
        let mut nl = Netlist::new("t");
        let one = nl.const1();
        let again = nl.const1();
        assert_eq!(one, again);
        let zero = nl.const0();
        assert_ne!(one, zero);
        assert_eq!(nl.kind(one), GateKind::Const1);
    }

    #[test]
    fn branch_source_resolution() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::Nand, &[a, b]).unwrap();
        assert_eq!(nl.branch_source(Branch { cell: g, pin: 1 }).unwrap(), b);
        assert!(matches!(
            nl.branch_source(Branch { cell: g, pin: 5 }),
            Err(NetlistError::PinOutOfRange { .. })
        ));
    }

    #[test]
    fn gates_iterator_skips_sources() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let _one = nl.const1();
        let g = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let gates: Vec<_> = nl.gates().collect();
        assert_eq!(gates, vec![g]);
    }

    #[test]
    fn display_lists_gates_and_outputs() {
        let mut nl = Netlist::new("disp");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_named_gate("gate1", GateKind::Nand, &[a, b]).unwrap();
        nl.add_output("y", g);
        let text = nl.to_string();
        assert!(text.contains("netlist disp"));
        assert!(text.contains("NAND"));
        assert!(text.contains("# gate1"));
        assert!(text.contains("output y"));
    }

    #[test]
    fn types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Netlist>();
    }

    #[test]
    fn named_gates_are_findable() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_named_gate("g1", GateKind::Not, &[a]).unwrap();
        assert_eq!(nl.find("g1").unwrap(), g);
        assert_eq!(nl.cell(g).name(), Some("g1"));
    }
}
