//! Topological ordering and level computation.

use crate::{Fanout, Netlist, NetlistError, SignalId};

impl Netlist {
    /// Returns all live signals in topological order (every signal after
    /// all of its fanins). Sources (inputs and constants) come first.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if the netlist is not a DAG.
    pub fn topo_order(&self) -> Result<Vec<SignalId>, NetlistError> {
        let cap = self.capacity();
        let mut pending: Vec<u32> = vec![0; cap];
        let mut order = Vec::with_capacity(cap);
        let mut ready: Vec<SignalId> = Vec::new();
        let mut live = 0usize;
        for s in self.signals() {
            live += 1;
            let n = self.fanins(s).len() as u32;
            pending[s.index()] = n;
            if n == 0 {
                ready.push(s);
            }
        }
        while let Some(s) = ready.pop() {
            order.push(s);
            for f in self.fanouts(s) {
                if let Fanout::Gate { cell, .. } = *f {
                    // A cell with k pins fed by the same stem appears k
                    // times in the fanout list; each occurrence decrements.
                    pending[cell.index()] -= 1;
                    if pending[cell.index()] == 0 {
                        ready.push(cell);
                    }
                }
            }
        }
        if order.len() != live {
            return Err(NetlistError::CycleDetected);
        }
        Ok(order)
    }

    /// Computes the structural level of every signal: sources are level 0,
    /// a gate is one more than its deepest fanin. Indexed by
    /// [`SignalId::index`]; dead slots hold 0.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if the netlist is not a DAG.
    pub fn levels(&self) -> Result<Vec<u32>, NetlistError> {
        let order = self.topo_order()?;
        let mut level = vec![0u32; self.capacity()];
        for s in order {
            let l = self
                .fanins(s)
                .iter()
                .map(|f| level[f.index()] + 1)
                .max()
                .unwrap_or(0);
            level[s.index()] = l;
        }
        Ok(level)
    }

    /// The maximum structural level over all primary outputs (the
    /// unit-delay depth of the circuit).
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if the netlist is not a DAG.
    pub fn depth(&self) -> Result<u32, NetlistError> {
        let levels = self.levels()?;
        Ok(self
            .outputs()
            .iter()
            .map(|po| levels[po.driver().index()])
            .max()
            .unwrap_or(0))
    }
}

#[cfg(test)]
mod tests {
    use crate::{GateKind, Netlist};

    #[test]
    fn topo_respects_dependencies() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::Not, &[g1]).unwrap();
        let g3 = nl.add_gate(GateKind::Or, &[g2, a]).unwrap();
        nl.add_output("o", g3);

        let order = nl.topo_order().unwrap();
        let pos = |s| order.iter().position(|&x| x == s).unwrap();
        assert!(pos(a) < pos(g1));
        assert!(pos(b) < pos(g1));
        assert!(pos(g1) < pos(g2));
        assert!(pos(g2) < pos(g3));
        assert_eq!(order.len(), 5);
    }

    #[test]
    fn duplicated_fanin_pin_counts() {
        // g = AND(a, a): the same stem feeds two pins.
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let g = nl.add_gate(GateKind::And, &[a, a]).unwrap();
        nl.add_output("o", g);
        let order = nl.topo_order().unwrap();
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn levels_and_depth() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::Not, &[g1]).unwrap();
        let g3 = nl.add_gate(GateKind::Or, &[g2, a]).unwrap();
        nl.add_output("o", g3);
        let levels = nl.levels().unwrap();
        assert_eq!(levels[a.index()], 0);
        assert_eq!(levels[g1.index()], 1);
        assert_eq!(levels[g2.index()], 2);
        assert_eq!(levels[g3.index()], 3);
        assert_eq!(nl.depth().unwrap(), 3);
    }

    #[test]
    fn empty_netlist_has_depth_zero() {
        let nl = Netlist::new("t");
        assert_eq!(nl.depth().unwrap(), 0);
        assert!(nl.topo_order().unwrap().is_empty());
    }
}
