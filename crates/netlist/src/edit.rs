//! Incremental editing operations: the netlist-level mechanics behind the
//! paper's OS2/IS2/OS3/IS3 substitutions and redundancy removal.
//!
//! The semantic legality of a substitution (the valid-clause conditions of
//! Theorems 1 and 2) is the business of the `gdo` crate; this module only
//! guarantees *structural* integrity: fanout tables stay consistent, cycles
//! are refused, and dead logic can be pruned.

use crate::{Branch, Fanout, Netlist, NetlistError, SignalId, SignalSet};

impl Netlist {
    /// Rewires one branch: input pin `branch.pin` of cell `branch.cell` is
    /// disconnected from its current source and connected to `new_source`.
    ///
    /// This is the structural half of the paper's `IS2`/`IS3` input
    /// substitution. Returns the previous source.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::DeadSignal`] if the cell or `new_source` is dead.
    /// * [`NetlistError::PinOutOfRange`] for a bad pin.
    /// * [`NetlistError::WouldCycle`] if `new_source` is in the transitive
    ///   fanout of `branch.cell` (connecting it would close a loop).
    pub fn rewire_branch(
        &mut self,
        branch: Branch,
        new_source: SignalId,
    ) -> Result<SignalId, NetlistError> {
        let old = self.branch_source(branch)?;
        if !self.is_live(new_source) {
            return Err(NetlistError::DeadSignal(new_source));
        }
        if new_source == branch.cell || self.transitive_fanout(branch.cell).contains(new_source) {
            return Err(NetlistError::WouldCycle {
                target: old,
                replacement: new_source,
            });
        }
        if old == new_source {
            return Ok(old);
        }
        self.detach_fanout(
            old,
            Fanout::Gate {
                cell: branch.cell,
                pin: branch.pin,
            },
        );
        self.cells[branch.cell.index()]
            .as_mut()
            .expect("checked live")
            .fanins[branch.pin as usize] = new_source;
        self.fanouts[new_source.index()].push(Fanout::Gate {
            cell: branch.cell,
            pin: branch.pin,
        });
        self.touch(old);
        self.touch(new_source);
        self.touch(branch.cell);
        Ok(old)
    }

    /// Substitutes a stem: every fanout connection of `old` (gate pins and
    /// primary outputs) is redirected to `new`.
    ///
    /// This is the structural half of the paper's `OS2`/`OS3` output
    /// substitution. The now-unused cone of `old` is *not* removed; call
    /// [`prune_dangling`](Self::prune_dangling) afterwards.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::DeadSignal`] if either signal is dead.
    /// * [`NetlistError::WouldCycle`] if `new` lies in the transitive fanout
    ///   of `old` — the paper's side condition that the `b`-signal may not
    ///   be situated in the transitive fanout of the `a`-signal.
    pub fn substitute_stem(&mut self, old: SignalId, new: SignalId) -> Result<(), NetlistError> {
        if !self.is_live(old) {
            return Err(NetlistError::DeadSignal(old));
        }
        if !self.is_live(new) {
            return Err(NetlistError::DeadSignal(new));
        }
        if old == new {
            return Ok(());
        }
        if self.transitive_fanout(old).contains(new) {
            return Err(NetlistError::WouldCycle {
                target: old,
                replacement: new,
            });
        }
        let uses = std::mem::take(&mut self.fanouts[old.index()]);
        for user in &uses {
            match *user {
                Fanout::Gate { cell, pin } => {
                    self.cells[cell.index()]
                        .as_mut()
                        .expect("live consumer")
                        .fanins[pin as usize] = new;
                    self.touch(cell);
                }
                Fanout::Po(index) => {
                    self.pos[index as usize].driver = new;
                }
            }
        }
        self.fanouts[new.index()].extend(uses);
        self.touch(old);
        self.touch(new);
        Ok(())
    }

    /// Deletes a gate cell outright. The cell must have no remaining
    /// fanout. Its fanin connections are detached.
    ///
    /// # Errors
    ///
    /// * [`NetlistError::DeadSignal`] if the cell is already dead.
    /// * [`NetlistError::NotAGate`] for primary inputs (inputs are part of
    ///   the interface and never deleted).
    ///
    /// # Panics
    ///
    /// Panics if the cell still has fanout; delete consumers first or use
    /// [`prune_dangling`](Self::prune_dangling).
    pub fn delete_gate(&mut self, s: SignalId) -> Result<(), NetlistError> {
        let cell = self.try_cell(s)?;
        if cell.kind == crate::GateKind::Input {
            return Err(NetlistError::NotAGate(s));
        }
        assert!(
            self.fanouts[s.index()].is_empty(),
            "attempt to delete {s} which still has fanout"
        );
        let cell = self.cells[s.index()].take().expect("checked live");
        if let Some(name) = &cell.name {
            self.by_name.remove(name);
        }
        for (pin, &f) in cell.fanins.iter().enumerate() {
            self.detach_fanout(
                f,
                Fanout::Gate {
                    cell: s,
                    pin: pin as u32,
                },
            );
            self.touch(f);
        }
        self.free.push(s.index() as u32);
        self.touch(s);
        Ok(())
    }

    /// Removes every gate whose output drives nothing, transitively, and
    /// returns the number of cells removed.
    ///
    /// Primary inputs are never removed. This implements the paper's
    /// pruning of "all gates exclusively necessary to compute `a`" after an
    /// output substitution.
    pub fn prune_dangling(&mut self) -> usize {
        let mut removed = 0;
        let mut work: Vec<SignalId> = self
            .gates()
            .filter(|&s| self.fanouts[s.index()].is_empty())
            .collect();
        while let Some(s) = work.pop() {
            if !self.is_live(s) || !self.fanouts[s.index()].is_empty() {
                continue;
            }
            if self.kind(s).is_source() {
                continue;
            }
            let fanins = self.cell(s).fanins.clone();
            self.delete_gate(s).expect("live dangling gate");
            removed += 1;
            for f in fanins {
                if self.is_live(f)
                    && self.fanouts[f.index()].is_empty()
                    && !self.kind(f).is_source()
                {
                    work.push(f);
                }
            }
        }
        removed
    }

    /// Computes the set of signals reachable from `s` through fanout edges
    /// (not including `s` itself).
    ///
    /// Substituting `s` by any member of this set would create a cycle.
    #[must_use]
    pub fn transitive_fanout(&self, s: SignalId) -> SignalSet {
        let mut seen = SignalSet::with_capacity(self.capacity());
        let mut stack: Vec<SignalId> = Vec::new();
        for f in &self.fanouts[s.index()] {
            if let Fanout::Gate { cell, .. } = *f {
                if seen.insert(cell) {
                    stack.push(cell);
                }
            }
        }
        while let Some(t) = stack.pop() {
            for f in &self.fanouts[t.index()] {
                if let Fanout::Gate { cell, .. } = *f {
                    if seen.insert(cell) {
                        stack.push(cell);
                    }
                }
            }
        }
        seen
    }

    /// Computes the set of signals in the transitive fanin cone of `s`,
    /// including `s` itself.
    #[must_use]
    pub fn transitive_fanin(&self, s: SignalId) -> SignalSet {
        let mut seen = SignalSet::with_capacity(self.capacity());
        let mut stack = vec![s];
        seen.insert(s);
        while let Some(t) = stack.pop() {
            for &f in self.fanins(t) {
                if seen.insert(f) {
                    stack.push(f);
                }
            }
        }
        seen
    }

    fn detach_fanout(&mut self, source: SignalId, connection: Fanout) {
        let list = &mut self.fanouts[source.index()];
        let pos = list
            .iter()
            .position(|&f| f == connection)
            .expect("fanout table out of sync");
        list.swap_remove(pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    /// a, b, c inputs; d = AND(a,b); e = OR(d,c); PO = e.
    fn sample() -> (Netlist, [SignalId; 5]) {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let e = nl.add_gate(GateKind::Or, &[d, c]).unwrap();
        nl.add_output("out", e);
        (nl, [a, b, c, d, e])
    }

    #[test]
    fn rewire_branch_moves_fanout() {
        let (mut nl, [a, _b, c, d, e]) = sample();
        let old = nl.rewire_branch(Branch { cell: e, pin: 0 }, a).unwrap();
        assert_eq!(old, d);
        assert_eq!(nl.fanins(e), &[a, c]);
        assert_eq!(nl.fanout_count(d), 0);
        assert_eq!(nl.fanout_count(a), 2);
        nl.validate().unwrap();
    }

    #[test]
    fn rewire_refuses_cycles() {
        let (mut nl, [_a, _b, _c, d, e]) = sample();
        // Feeding e back into d would create d -> e -> d.
        let err = nl.rewire_branch(Branch { cell: d, pin: 0 }, e).unwrap_err();
        assert!(matches!(err, NetlistError::WouldCycle { .. }));
        // Self-loop is also refused.
        let err = nl.rewire_branch(Branch { cell: d, pin: 0 }, d).unwrap_err();
        assert!(matches!(err, NetlistError::WouldCycle { .. }));
        nl.validate().unwrap();
    }

    #[test]
    fn substitute_stem_redirects_everything() {
        let (mut nl, [a, _b, _c, d, e]) = sample();
        nl.substitute_stem(d, a).unwrap();
        assert_eq!(nl.fanins(e), &[a, nl.find("c").unwrap()]);
        assert_eq!(nl.fanout_count(d), 0);
        let removed = nl.prune_dangling();
        assert_eq!(removed, 1);
        assert!(!nl.is_live(d));
        nl.validate().unwrap();
    }

    #[test]
    fn substitute_stem_redirects_primary_outputs() {
        let (mut nl, [a, _b, _c, _d, e]) = sample();
        nl.substitute_stem(e, a).unwrap();
        assert_eq!(nl.outputs()[0].driver(), a);
        let removed = nl.prune_dangling();
        assert_eq!(removed, 2); // d and e both die
        nl.validate().unwrap();
    }

    #[test]
    fn substitute_stem_refuses_fanout_replacement() {
        let (mut nl, [_a, _b, _c, d, e]) = sample();
        let err = nl.substitute_stem(d, e).unwrap_err();
        assert!(matches!(err, NetlistError::WouldCycle { .. }));
    }

    #[test]
    fn prune_keeps_shared_logic() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let shared = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let g1 = nl.add_gate(GateKind::Not, &[shared]).unwrap();
        let g2 = nl.add_gate(GateKind::Buf, &[shared]).unwrap();
        nl.add_output("o1", g1);
        nl.add_output("o2", g2);
        // Redirect o1 to a; g1 dies but shared survives through g2.
        nl.substitute_stem(g1, a).unwrap();
        assert_eq!(nl.prune_dangling(), 1);
        assert!(nl.is_live(shared));
        assert!(nl.is_live(g2));
        nl.validate().unwrap();
    }

    #[test]
    fn delete_gate_rejects_inputs_and_live_fanout() {
        let (mut nl, [a, ..]) = sample();
        assert!(matches!(nl.delete_gate(a), Err(NetlistError::NotAGate(_))));
    }

    #[test]
    fn slots_are_reused_after_delete() {
        let (mut nl, [a, _b, _c, d, _e]) = sample();
        nl.substitute_stem(d, a).unwrap();
        nl.prune_dangling();
        let cap_before = nl.capacity();
        let n = nl.add_gate(GateKind::Not, &[a]).unwrap();
        assert_eq!(n, d, "freed slot should be recycled");
        assert_eq!(nl.capacity(), cap_before);
        nl.validate().unwrap();
    }

    #[test]
    fn tfo_and_tfi() {
        let (nl, [a, b, c, d, e]) = sample();
        let tfo_a = nl.transitive_fanout(a);
        assert!(tfo_a.contains(d) && tfo_a.contains(e) && !tfo_a.contains(b));
        let tfi_e = nl.transitive_fanin(e);
        for s in [a, b, c, d, e] {
            assert!(tfi_e.contains(s));
        }
        let tfi_d = nl.transitive_fanin(d);
        assert!(!tfi_d.contains(c));
    }
}
