use crate::SignalId;

/// A dense bit set over signal ids.
///
/// Used for transitive-fanin/fanout cones, reachability checks and the
/// critical-gate set. Written in-repo to keep the reproduction free of
/// external data-structure dependencies.
///
/// # Example
///
/// ```
/// use netlist::{SignalSet, SignalId};
///
/// let mut s = SignalSet::with_capacity(100);
/// let a = SignalId::from_index(7);
/// assert!(!s.contains(a));
/// s.insert(a);
/// assert!(s.contains(a));
/// assert_eq!(s.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SignalSet {
    words: Vec<u64>,
    len: usize,
}

impl SignalSet {
    /// Creates an empty set able to hold ids below `capacity` without
    /// reallocation.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        SignalSet {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of signals in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no signal is in the set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts a signal; returns `true` if it was not already present.
    pub fn insert(&mut self, s: SignalId) -> bool {
        let (w, b) = (s.index() / 64, s.index() % 64);
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        self.len += usize::from(newly);
        newly
    }

    /// Removes a signal; returns `true` if it was present.
    pub fn remove(&mut self, s: SignalId) -> bool {
        let (w, b) = (s.index() / 64, s.index() % 64);
        if w >= self.words.len() {
            return false;
        }
        let present = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        self.len -= usize::from(present);
        present
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, s: SignalId) -> bool {
        let (w, b) = (s.index() / 64, s.index() % 64);
        self.words.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Removes every element while keeping the allocation.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates over the members in increasing id order.
    pub fn iter(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.words.iter().enumerate().flat_map(|(w, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(SignalId::from_index(w * 64 + b))
                }
            })
        })
    }
}

impl FromIterator<SignalId> for SignalSet {
    fn from_iter<I: IntoIterator<Item = SignalId>>(iter: I) -> Self {
        let mut s = SignalSet::new();
        for id in iter {
            s.insert(id);
        }
        s
    }
}

impl Extend<SignalId> for SignalSet {
    fn extend<I: IntoIterator<Item = SignalId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: usize) -> SignalId {
        SignalId::from_index(i)
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = SignalSet::new();
        assert!(s.insert(id(5)));
        assert!(!s.insert(id(5)));
        assert!(s.contains(id(5)));
        assert!(!s.contains(id(6)));
        assert!(s.remove(id(5)));
        assert!(!s.remove(id(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_on_demand() {
        let mut s = SignalSet::with_capacity(8);
        s.insert(id(1000));
        assert!(s.contains(id(1000)));
        assert!(!s.contains(id(999)));
    }

    #[test]
    fn iter_in_order() {
        let mut s = SignalSet::new();
        for i in [130usize, 2, 64, 63, 7] {
            s.insert(id(i));
        }
        let got: Vec<usize> = s.iter().map(SignalId::index).collect();
        assert_eq!(got, vec![2, 7, 63, 64, 130]);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: SignalSet = [id(1), id(3)].into_iter().collect();
        s.extend([id(3), id(9)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut s = SignalSet::with_capacity(256);
        s.insert(id(200));
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(id(200)));
    }
}
