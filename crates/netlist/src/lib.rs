//! Gate-level combinational netlist intermediate representation.
//!
//! This crate provides the data structure every other part of the GDO
//! reproduction is built on: a mutable DAG of logic gates with explicit
//! *stem* / *branch* distinction (a stem is a gate output, a branch is one
//! particular fanout connection of that output), incremental editing
//! primitives (rewiring single branches, substituting whole stems, inserting
//! gates, pruning dead logic), topological ordering, structural hashing, and
//! integrity validation.
//!
//! # Model
//!
//! Every signal is the output of exactly one [`Cell`]; primary inputs are
//! cells of kind [`GateKind::Input`]. A signal is identified by a
//! [`SignalId`]. A *branch* is identified by a (consumer cell, input pin)
//! pair; see [`Branch`].
//!
//! # Example
//!
//! ```
//! use netlist::{Netlist, GateKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The circuit of Fig. 1 of the paper: d = AND(a, b); e = NOT(c);
//! // f = OR(d, e).
//! let mut nl = Netlist::new("fig1");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let c = nl.add_input("c");
//! let d = nl.add_gate(GateKind::And, &[a, b])?;
//! let e = nl.add_gate(GateKind::Not, &[c])?;
//! let f = nl.add_gate(GateKind::Or, &[d, e])?;
//! nl.add_output("f", f);
//!
//! assert_eq!(nl.stats().gates, 3);
//! assert_eq!(nl.stats().literals, 5);
//! nl.validate()?;
//! # Ok(())
//! # }
//! ```

mod bitset;
mod cell;
mod delta;
mod digest;
mod edit;
mod error;
mod eval;
mod extract;
mod id;
mod kind;
#[allow(clippy::module_inception)]
mod netlist;
mod raw;
mod stats;
mod strash;
mod topo;
mod validate;

pub use bitset::SignalSet;
pub use cell::{Branch, Cell, Fanout};
pub use delta::EditDelta;
pub use error::NetlistError;
pub use extract::RegionExtract;
pub use id::SignalId;
pub use kind::{Arity, GateKind};
pub use netlist::{Netlist, PrimaryOutput};
pub use raw::{RawCell, RawFanout, RawNetlist};
pub use stats::NetlistStats;
pub use validate::{ValidateError, CYCLE_MEMBER_CAP};
