//! Exact structural decomposition of a [`Netlist`] into plain data —
//! the foundation of crash-safe snapshots.
//!
//! A [`RawNetlist`] captures *everything* that determines the netlist's
//! future behavior under deterministic replay, including state that is
//! invisible to logic-level equality: dead cell slots, the order of each
//! signal's fanout list, and the free-slot stack that decides which
//! [`SignalId`]s future allocations receive. Round-tripping through
//! `to_raw` / `from_raw` therefore reproduces a netlist that behaves
//! *identically* under any further sequence of edits — which is exactly
//! what resume-from-snapshot requires for byte-identical results.
//!
//! The raw form deliberately excludes the edit journal: a snapshot is
//! taken at a journal-drained boundary, and the resumed run re-arms
//! recording itself.

use crate::cell::{Cell, Fanout};
use crate::id::SignalId;
use crate::kind::GateKind;
use crate::netlist::{Netlist, PrimaryOutput};
use crate::NetlistError;
use std::collections::HashMap;

/// One cell slot in index order: `None` for a dead (freed) slot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawCell {
    /// The gate kind.
    pub kind: GateKind,
    /// Fanin signals in pin order.
    pub fanins: Vec<u32>,
    /// Bound library cell tag, if mapped.
    pub lib: Option<u32>,
    /// Optional signal name.
    pub name: Option<String>,
}

/// One fanout record: either input pin `pin` of cell `cell`, or primary
/// output number `po`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawFanout {
    /// Fans out into a gate input pin.
    Gate {
        /// Consumer cell.
        cell: u32,
        /// Consumer input pin.
        pin: u32,
    },
    /// Drives a primary output.
    Po(u32),
}

/// The complete raw state of a [`Netlist`], slot by slot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RawNetlist {
    /// Netlist name.
    pub name: String,
    /// Every cell slot in index order (`None` = freed slot).
    pub cells: Vec<Option<RawCell>>,
    /// Per-slot fanout lists, *verbatim order* (fanout order is not
    /// derivable from the cells: `swap_remove` during edits permutes it,
    /// and iteration order feeds deterministic algorithms downstream).
    pub fanouts: Vec<Vec<RawFanout>>,
    /// Primary inputs in declaration order.
    pub pis: Vec<u32>,
    /// Primary outputs: (name, driver) in declaration order.
    pub pos: Vec<(String, u32)>,
    /// The free-slot stack, verbatim (its pop order decides the
    /// [`SignalId`]s future `alloc` calls hand out).
    pub free: Vec<u32>,
}

impl Netlist {
    /// Decomposes the netlist into its raw state. The edit journal is
    /// not captured (see the module docs).
    #[must_use]
    pub fn to_raw(&self) -> RawNetlist {
        RawNetlist {
            name: self.name.clone(),
            cells: self
                .cells
                .iter()
                .map(|slot| {
                    slot.as_ref().map(|c| RawCell {
                        kind: c.kind,
                        fanins: c.fanins.iter().map(|s| s.index() as u32).collect(),
                        lib: c.lib,
                        name: c.name.clone(),
                    })
                })
                .collect(),
            fanouts: self
                .fanouts
                .iter()
                .map(|list| {
                    list.iter()
                        .map(|f| match f {
                            Fanout::Gate { cell, pin } => RawFanout::Gate {
                                cell: cell.index() as u32,
                                pin: *pin,
                            },
                            Fanout::Po(i) => RawFanout::Po(*i),
                        })
                        .collect()
                })
                .collect(),
            pis: self.pis.iter().map(|s| s.index() as u32).collect(),
            pos: self
                .pos
                .iter()
                .map(|po| (po.name.clone(), po.driver.index() as u32))
                .collect(),
            free: self.free.clone(),
        }
    }

    /// Rebuilds a netlist from its raw state. The name index is
    /// reconstructed from cell names; the edit journal starts disarmed.
    ///
    /// # Errors
    ///
    /// [`NetlistError::DeadSignal`] when any index points past the
    /// slot table — the raw data is inconsistent (e.g. a truncated or
    /// hand-edited snapshot).
    pub fn from_raw(raw: &RawNetlist) -> Result<Netlist, NetlistError> {
        let n = raw.cells.len();
        let sig = |idx: u32| -> Result<SignalId, NetlistError> {
            if (idx as usize) < n {
                Ok(SignalId::from_index(idx as usize))
            } else {
                Err(NetlistError::DeadSignal(SignalId::from_index(idx as usize)))
            }
        };
        if raw.fanouts.len() != n {
            return Err(NetlistError::DeadSignal(SignalId::from_index(
                raw.fanouts.len().max(n),
            )));
        }
        let mut cells: Vec<Option<Cell>> = Vec::with_capacity(n);
        let mut by_name: HashMap<String, SignalId> = HashMap::new();
        for (i, slot) in raw.cells.iter().enumerate() {
            match slot {
                None => cells.push(None),
                Some(rc) => {
                    let fanins = rc
                        .fanins
                        .iter()
                        .map(|&f| sig(f))
                        .collect::<Result<Vec<_>, _>>()?;
                    if let Some(name) = &rc.name {
                        by_name.insert(name.clone(), SignalId::from_index(i));
                    }
                    cells.push(Some(Cell {
                        kind: rc.kind,
                        fanins,
                        lib: rc.lib,
                        name: rc.name.clone(),
                    }));
                }
            }
        }
        let mut fanouts: Vec<Vec<Fanout>> = Vec::with_capacity(n);
        for list in &raw.fanouts {
            let mut out = Vec::with_capacity(list.len());
            for f in list {
                out.push(match f {
                    RawFanout::Gate { cell, pin } => Fanout::Gate {
                        cell: sig(*cell)?,
                        pin: *pin,
                    },
                    RawFanout::Po(i) => Fanout::Po(*i),
                });
            }
            fanouts.push(out);
        }
        let pis = raw
            .pis
            .iter()
            .map(|&s| sig(s))
            .collect::<Result<Vec<_>, _>>()?;
        let pos = raw
            .pos
            .iter()
            .map(|(name, driver)| {
                Ok(PrimaryOutput {
                    name: name.clone(),
                    driver: sig(*driver)?,
                })
            })
            .collect::<Result<Vec<_>, NetlistError>>()?;
        for &f in &raw.free {
            let _ = sig(f)?;
        }
        Ok(Netlist {
            name: raw.name.clone(),
            cells,
            fanouts,
            pis,
            pos,
            by_name,
            free: raw.free.clone(),
            journal: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_with_history() -> Netlist {
        let mut nl = Netlist::new("raw-rt");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let e = nl.add_gate(GateKind::Not, &[c]).unwrap();
        let f = nl.add_gate(GateKind::Or, &[d, e]).unwrap();
        let g = nl.add_gate(GateKind::Nand, &[d, f]).unwrap();
        nl.add_output("f", f);
        nl.add_output("g", g);
        // Create a dead slot + non-trivial free stack and fanout order.
        nl.substitute_stem(g, f).unwrap();
        nl.prune_dangling();
        nl
    }

    #[test]
    fn round_trip_preserves_dead_slots_and_free_stack() {
        let nl = build_with_history();
        let raw = nl.to_raw();
        assert!(
            raw.cells.iter().any(Option::is_none) || !raw.free.is_empty(),
            "history should leave at least one freed slot"
        );
        let back = Netlist::from_raw(&raw).unwrap();
        assert_eq!(back.to_raw(), raw, "raw form must be a fixpoint");
        back.validate().unwrap();
        assert!(nl.equiv_exhaustive(&back).unwrap());
    }

    #[test]
    fn round_trip_preserves_future_allocation_order() {
        let nl = build_with_history();
        let mut a = nl.clone();
        let mut b = Netlist::from_raw(&nl.to_raw()).unwrap();
        // The same edit on both must allocate the same SignalId.
        let pa = a.inputs()[0];
        let pb = b.inputs()[0];
        let ga = a.add_gate(GateKind::Not, &[pa]).unwrap();
        let gb = b.add_gate(GateKind::Not, &[pb]).unwrap();
        assert_eq!(ga, gb, "free-stack order must survive the round trip");
        assert_eq!(a.to_raw(), b.to_raw());
    }

    #[test]
    fn from_raw_rejects_dangling_indices() {
        let nl = build_with_history();
        let mut raw = nl.to_raw();
        raw.pis.push(10_000);
        assert!(Netlist::from_raw(&raw).is_err());

        let mut raw = nl.to_raw();
        raw.free.push(10_000);
        assert!(Netlist::from_raw(&raw).is_err());

        let mut raw = nl.to_raw();
        raw.fanouts.pop();
        assert!(Netlist::from_raw(&raw).is_err());
    }

    #[test]
    fn restored_netlist_is_not_recording() {
        let mut nl = build_with_history();
        nl.record_edits();
        let back = Netlist::from_raw(&nl.to_raw()).unwrap();
        assert!(!back.is_recording(), "journal must not survive the codec");
    }
}
