//! Size statistics matching the columns of the paper's result tables.

use crate::Netlist;
use std::fmt;

/// Size summary of a netlist: the "#gates" and "#literals" columns of the
/// paper's Tables 1 and 2.
///
/// *Gates* counts live logic cells (not inputs or constants). *Literals*
/// counts gate input pins, the standard literal count of a mapped netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetlistStats {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of live logic gates.
    pub gates: usize,
    /// Total number of gate input pins.
    pub literals: usize,
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} inputs, {} outputs, {} gates, {} literals",
            self.inputs, self.outputs, self.gates, self.literals
        )
    }
}

impl Netlist {
    /// Computes the current size statistics.
    ///
    /// ```
    /// use netlist::{Netlist, GateKind};
    /// # fn main() -> Result<(), netlist::NetlistError> {
    /// let mut nl = Netlist::new("t");
    /// let a = nl.add_input("a");
    /// let b = nl.add_input("b");
    /// let g = nl.add_gate(GateKind::Nand, &[a, b])?;
    /// nl.add_output("o", g);
    /// let s = nl.stats();
    /// assert_eq!((s.inputs, s.outputs, s.gates, s.literals), (2, 1, 1, 2));
    /// # Ok(())
    /// # }
    /// ```
    #[must_use]
    pub fn stats(&self) -> NetlistStats {
        let mut gates = 0;
        let mut literals = 0;
        for s in self.gates() {
            gates += 1;
            literals += self.fanins(s).len();
        }
        NetlistStats {
            inputs: self.inputs().len(),
            outputs: self.outputs().len(),
            gates,
            literals,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{GateKind, Netlist};

    #[test]
    fn constants_do_not_count_as_gates() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let one = nl.const1();
        let g = nl.add_gate(GateKind::And, &[a, one]).unwrap();
        nl.add_output("o", g);
        let s = nl.stats();
        assert_eq!(s.gates, 1);
        assert_eq!(s.literals, 2);
    }

    #[test]
    fn display_mentions_all_fields() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        nl.add_output("o", a);
        let text = nl.stats().to_string();
        assert!(text.contains("1 inputs") && text.contains("0 gates"));
    }
}
