//! Single-vector functional evaluation, used by tests and small tools.
//! Bulk bit-parallel simulation lives in the `sim` crate.

use crate::{GateKind, Netlist, NetlistError};

impl Netlist {
    /// Evaluates the netlist on a single primary-input assignment.
    ///
    /// `inputs[i]` is the value of `self.inputs()[i]`. Returns one value
    /// per signal slot, indexed by [`crate::SignalId::index`] (dead slots hold
    /// `false`).
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if the netlist is not a DAG.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the number of primary inputs.
    pub fn eval(&self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        assert_eq!(
            inputs.len(),
            self.inputs().len(),
            "expected {} input values",
            self.inputs().len()
        );
        let order = self.topo_order()?;
        let mut values = vec![false; self.capacity()];
        for (i, &pi) in self.inputs().iter().enumerate() {
            values[pi.index()] = inputs[i];
        }
        let mut buf: Vec<bool> = Vec::new();
        for s in order {
            let kind = self.kind(s);
            if kind == GateKind::Input {
                continue;
            }
            buf.clear();
            buf.extend(self.fanins(s).iter().map(|f| values[f.index()]));
            values[s.index()] = kind.eval(&buf);
        }
        Ok(values)
    }

    /// Evaluates the netlist and returns only the primary-output values, in
    /// output order.
    ///
    /// # Errors
    ///
    /// Same as [`eval`](Self::eval).
    pub fn eval_outputs(&self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        let values = self.eval(inputs)?;
        Ok(self
            .outputs()
            .iter()
            .map(|po| values[po.driver().index()])
            .collect())
    }

    /// Checks functional equivalence against another netlist by exhaustive
    /// enumeration. Only usable for small input counts; the `sat` and
    /// `bdd` crates provide scalable equivalence checking.
    ///
    /// Both netlists must have the same number of inputs and outputs
    /// (matched positionally).
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if either netlist is cyclic.
    ///
    /// # Panics
    ///
    /// Panics if the interfaces differ in size or there are more than 20
    /// inputs.
    pub fn equiv_exhaustive(&self, other: &Netlist) -> Result<bool, NetlistError> {
        assert_eq!(self.inputs().len(), other.inputs().len());
        assert_eq!(self.outputs().len(), other.outputs().len());
        let n = self.inputs().len();
        assert!(n <= 20, "exhaustive equivalence limited to 20 inputs");
        for v in 0u32..(1u32 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| v >> i & 1 == 1).collect();
            if self.eval_outputs(&assignment)? != other.eval_outputs(&assignment)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use crate::{GateKind, Netlist};

    #[test]
    fn fig1_truth_table() {
        // d = AND(a,b); e = NOT(c); f = OR(d,e)
        let mut nl = Netlist::new("fig1");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let e = nl.add_gate(GateKind::Not, &[c]).unwrap();
        let f = nl.add_gate(GateKind::Or, &[d, e]).unwrap();
        nl.add_output("f", f);
        for v in 0u32..8 {
            let (va, vb, vc) = (v & 1 == 1, v >> 1 & 1 == 1, v >> 2 & 1 == 1);
            let out = nl.eval_outputs(&[va, vb, vc]).unwrap();
            assert_eq!(out[0], (va && vb) || !vc);
        }
    }

    #[test]
    fn equivalence_of_demorgan_pair() {
        // NAND(a,b) == OR(!a,!b)
        let mut n1 = Netlist::new("n1");
        let a = n1.add_input("a");
        let b = n1.add_input("b");
        let g = n1.add_gate(GateKind::Nand, &[a, b]).unwrap();
        n1.add_output("o", g);

        let mut n2 = Netlist::new("n2");
        let a = n2.add_input("a");
        let b = n2.add_input("b");
        let na = n2.add_gate(GateKind::Not, &[a]).unwrap();
        let nb = n2.add_gate(GateKind::Not, &[b]).unwrap();
        let g = n2.add_gate(GateKind::Or, &[na, nb]).unwrap();
        n2.add_output("o", g);

        assert!(n1.equiv_exhaustive(&n2).unwrap());

        let mut n3 = Netlist::new("n3");
        let a = n3.add_input("a");
        let b = n3.add_input("b");
        let g = n3.add_gate(GateKind::And, &[a, b]).unwrap();
        n3.add_output("o", g);
        assert!(!n1.equiv_exhaustive(&n3).unwrap());
    }

    #[test]
    fn constants_evaluate() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let one = nl.const1();
        let g = nl.add_gate(GateKind::Xor, &[a, one]).unwrap();
        nl.add_output("o", g);
        assert_eq!(nl.eval_outputs(&[false]).unwrap(), vec![true]);
        assert_eq!(nl.eval_outputs(&[true]).unwrap(), vec![false]);
    }
}
