use std::fmt;

/// The logic function computed by a cell.
///
/// Variable-arity kinds (`And`, `Nand`, `Or`, `Nor`, `Xor`, `Xnor`) accept
/// two or more inputs; `Xor`/`Xnor` with more than two inputs compute parity
/// / its complement, matching the ISCAS `.bench` convention. The
/// complex-gate kinds mirror the and-or-invert / or-and-invert cells of
/// standard-cell libraries such as `mcnc.genlib`:
///
/// * `Aoi21(a, b, c) = !(a·b + c)`
/// * `Oai21(a, b, c) = !((a + b)·c)`
/// * `Aoi22(a, b, c, d) = !(a·b + c·d)`
/// * `Oai22(a, b, c, d) = !((a + b)·(c + d))`
///
/// # Example
///
/// ```
/// use netlist::GateKind;
///
/// assert!(GateKind::And.eval(&[true, true]));
/// assert!(!GateKind::Aoi21.eval(&[true, true, false]));
/// assert!(GateKind::Xor.is_commutative());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input (no fanins).
    Input,
    /// Constant logic 0 (no fanins).
    Const0,
    /// Constant logic 1 (no fanins).
    Const1,
    /// Buffer: `y = a`.
    Buf,
    /// Inverter: `y = !a`.
    Not,
    /// n-ary conjunction.
    And,
    /// n-ary negated conjunction.
    Nand,
    /// n-ary disjunction.
    Or,
    /// n-ary negated disjunction.
    Nor,
    /// n-ary parity (XOR).
    Xor,
    /// n-ary negated parity (XNOR).
    Xnor,
    /// 3-input and-or-invert: `!(ab + c)`.
    Aoi21,
    /// 3-input or-and-invert: `!((a + b)c)`.
    Oai21,
    /// 4-input and-or-invert: `!(ab + cd)`.
    Aoi22,
    /// 4-input or-and-invert: `!((a + b)(c + d))`.
    Oai22,
}

/// Number of fanins a [`GateKind`] accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arity {
    /// Exactly this many fanins.
    Fixed(usize),
    /// This many fanins or more.
    AtLeast(usize),
}

impl Arity {
    /// Returns `true` if a fanin count satisfies this arity constraint.
    ///
    /// ```
    /// use netlist::Arity;
    /// assert!(Arity::AtLeast(2).accepts(5));
    /// assert!(!Arity::Fixed(3).accepts(2));
    /// ```
    #[must_use]
    pub fn accepts(self, n: usize) -> bool {
        match self {
            Arity::Fixed(k) => n == k,
            Arity::AtLeast(k) => n >= k,
        }
    }
}

impl GateKind {
    /// All gate kinds, useful for exhaustive tests.
    pub const ALL: [GateKind; 15] = [
        GateKind::Input,
        GateKind::Const0,
        GateKind::Const1,
        GateKind::Buf,
        GateKind::Not,
        GateKind::And,
        GateKind::Nand,
        GateKind::Or,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Xnor,
        GateKind::Aoi21,
        GateKind::Oai21,
        GateKind::Aoi22,
        GateKind::Oai22,
    ];

    /// Returns the arity constraint of this kind.
    #[must_use]
    pub fn arity(self) -> Arity {
        use GateKind::*;
        match self {
            Input | Const0 | Const1 => Arity::Fixed(0),
            Buf | Not => Arity::Fixed(1),
            And | Nand | Or | Nor | Xor | Xnor => Arity::AtLeast(2),
            Aoi21 | Oai21 => Arity::Fixed(3),
            Aoi22 | Oai22 => Arity::Fixed(4),
        }
    }

    /// Returns `true` if permuting the fanins never changes the function.
    ///
    /// The complex gates are only commutative within pin groups, so they
    /// report `false`.
    #[must_use]
    pub fn is_commutative(self) -> bool {
        use GateKind::*;
        matches!(self, And | Nand | Or | Nor | Xor | Xnor)
    }

    /// Returns `true` for kinds with no fanins (inputs and constants).
    #[must_use]
    pub fn is_source(self) -> bool {
        matches!(self, GateKind::Input | GateKind::Const0 | GateKind::Const1)
    }

    /// Evaluates the gate function on boolean inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` violates [`GateKind::arity`].
    #[must_use]
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert!(
            self.arity().accepts(inputs.len()),
            "{self} applied to {} inputs",
            inputs.len()
        );
        use GateKind::*;
        match self {
            Input => panic!("primary inputs have no defined function"),
            Const0 => false,
            Const1 => true,
            Buf => inputs[0],
            Not => !inputs[0],
            And => inputs.iter().all(|&v| v),
            Nand => !inputs.iter().all(|&v| v),
            Or => inputs.iter().any(|&v| v),
            Nor => !inputs.iter().any(|&v| v),
            Xor => inputs.iter().fold(false, |acc, &v| acc ^ v),
            Xnor => !inputs.iter().fold(false, |acc, &v| acc ^ v),
            Aoi21 => !((inputs[0] && inputs[1]) || inputs[2]),
            Oai21 => !((inputs[0] || inputs[1]) && inputs[2]),
            Aoi22 => !((inputs[0] && inputs[1]) || (inputs[2] && inputs[3])),
            Oai22 => !((inputs[0] || inputs[1]) && (inputs[2] || inputs[3])),
        }
    }

    /// Evaluates the gate function bit-parallel on 64 vectors at once.
    ///
    /// Bit `i` of the result is the gate output for the assignment formed by
    /// bit `i` of every input word. This is the primitive the bit-parallel
    /// fault simulator of the paper's Section 4 is built on.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` violates [`GateKind::arity`].
    #[must_use]
    pub fn eval_words(self, inputs: &[u64]) -> u64 {
        assert!(
            self.arity().accepts(inputs.len()),
            "{self} applied to {} inputs",
            inputs.len()
        );
        use GateKind::*;
        match self {
            Input => panic!("primary inputs have no defined function"),
            Const0 => 0,
            Const1 => !0,
            Buf => inputs[0],
            Not => !inputs[0],
            And => inputs.iter().fold(!0u64, |acc, &v| acc & v),
            Nand => !inputs.iter().fold(!0u64, |acc, &v| acc & v),
            Or => inputs.iter().fold(0u64, |acc, &v| acc | v),
            Nor => !inputs.iter().fold(0u64, |acc, &v| acc | v),
            Xor => inputs.iter().fold(0u64, |acc, &v| acc ^ v),
            Xnor => !inputs.iter().fold(0u64, |acc, &v| acc ^ v),
            Aoi21 => !((inputs[0] & inputs[1]) | inputs[2]),
            Oai21 => !((inputs[0] | inputs[1]) & inputs[2]),
            Aoi22 => !((inputs[0] & inputs[1]) | (inputs[2] & inputs[3])),
            Oai22 => !((inputs[0] | inputs[1]) & (inputs[2] | inputs[3])),
        }
    }

    /// Short upper-case mnemonic as used in `.bench` files where one exists.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use GateKind::*;
        match self {
            Input => "INPUT",
            Const0 => "CONST0",
            Const1 => "CONST1",
            Buf => "BUFF",
            Not => "NOT",
            And => "AND",
            Nand => "NAND",
            Or => "OR",
            Nor => "NOR",
            Xor => "XOR",
            Xnor => "XNOR",
            Aoi21 => "AOI21",
            Oai21 => "OAI21",
            Aoi22 => "AOI22",
            Oai22 => "OAI22",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively cross-checks `eval_words` against `eval` for every kind
    /// and every input combination at the kind's minimum arity.
    #[test]
    fn eval_words_matches_eval() {
        for kind in GateKind::ALL {
            if kind == GateKind::Input {
                continue;
            }
            let n = match kind.arity() {
                Arity::Fixed(k) => k,
                Arity::AtLeast(k) => k + 1, // exercise 3-input variadic case
            };
            for assignment in 0u32..(1 << n) {
                let bools: Vec<bool> = (0..n).map(|i| assignment >> i & 1 == 1).collect();
                let words: Vec<u64> = bools.iter().map(|&b| if b { !0 } else { 0 }).collect();
                let scalar = kind.eval(&bools);
                let wide = kind.eval_words(&words);
                assert_eq!(wide, if scalar { !0 } else { 0 }, "{kind} on {bools:?}");
            }
        }
    }

    #[test]
    fn variadic_parity() {
        // 5-input XOR is parity.
        for assignment in 0u32..32 {
            let bools: Vec<bool> = (0..5).map(|i| assignment >> i & 1 == 1).collect();
            assert_eq!(GateKind::Xor.eval(&bools), assignment.count_ones() % 2 == 1);
            assert_eq!(
                GateKind::Xnor.eval(&bools),
                assignment.count_ones() % 2 == 0
            );
        }
    }

    #[test]
    fn complex_gates_truth_tables() {
        // AOI21 = !(ab + c)
        assert!(GateKind::Aoi21.eval(&[false, false, false]));
        assert!(!GateKind::Aoi21.eval(&[true, true, false]));
        assert!(!GateKind::Aoi21.eval(&[false, false, true]));
        // OAI21 = !((a+b)c)
        assert!(GateKind::Oai21.eval(&[true, false, false]));
        assert!(!GateKind::Oai21.eval(&[true, false, true]));
        // AOI22 = !(ab + cd)
        assert!(GateKind::Aoi22.eval(&[true, false, false, true]));
        assert!(!GateKind::Aoi22.eval(&[true, true, false, false]));
        // OAI22 = !((a+b)(c+d))
        assert!(GateKind::Oai22.eval(&[false, false, true, true]));
        assert!(!GateKind::Oai22.eval(&[true, false, false, true]));
    }

    #[test]
    fn arity_constraints() {
        assert!(GateKind::Not.arity().accepts(1));
        assert!(!GateKind::Not.arity().accepts(2));
        assert!(GateKind::And.arity().accepts(8));
        assert!(!GateKind::And.arity().accepts(1));
        assert!(GateKind::Aoi22.arity().accepts(4));
        assert!(GateKind::Input.arity().accepts(0));
    }

    #[test]
    #[should_panic(expected = "applied to")]
    fn eval_rejects_bad_arity() {
        let _ = GateKind::Not.eval(&[true, false]);
    }

    #[test]
    fn commutativity_flags() {
        assert!(GateKind::And.is_commutative());
        assert!(GateKind::Nor.is_commutative());
        assert!(!GateKind::Aoi21.is_commutative());
        assert!(!GateKind::Buf.is_commutative());
    }
}
