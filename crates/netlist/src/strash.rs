//! Structural hashing and constant/buffer sweeping.
//!
//! These are the generic netlist clean-up services used by the
//! `script_rugged` stand-in and after GDO substitutions: merging
//! structurally identical gates, propagating constants, collapsing buffer
//! and double-inverter chains, and removing duplicate fanins.

use crate::{GateKind, Netlist, NetlistError, SignalId};
use std::collections::HashMap;

impl Netlist {
    /// Merges structurally identical gates (same kind, same fanin multiset
    /// for commutative kinds, same fanin order otherwise, same library
    /// binding).
    ///
    /// Returns the number of gates merged away. Dead logic left behind by
    /// merging is pruned.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if the netlist is cyclic.
    pub fn strash(&mut self) -> Result<usize, NetlistError> {
        let order = self.topo_order()?;
        let mut table: HashMap<(GateKind, Vec<SignalId>, Option<u32>), SignalId> = HashMap::new();
        // Union-find-free approach: process in topo order and track the
        // representative of every merged signal so later keys are built on
        // representatives.
        let mut rep: Vec<SignalId> = (0..self.capacity()).map(SignalId::from_index).collect();
        let mut merged = 0;
        for s in order {
            let kind = self.kind(s);
            if kind == GateKind::Input {
                continue;
            }
            let mut fanins: Vec<SignalId> = self.fanins(s).iter().map(|f| rep[f.index()]).collect();
            if kind.is_commutative() {
                fanins.sort_unstable();
            }
            let key = (kind, fanins, self.cell(s).lib());
            match table.get(&key) {
                Some(&canon) => {
                    self.substitute_stem(s, canon)?;
                    rep[s.index()] = canon;
                    merged += 1;
                }
                None => {
                    table.insert(key, s);
                }
            }
        }
        if merged > 0 {
            self.prune_dangling();
        }
        Ok(merged)
    }

    /// Sweeps the netlist: propagates constants, collapses buffers and
    /// double inverters, removes duplicate fanins of idempotent gates,
    /// cancels duplicate XOR fanins, and detects `x AND !x` / `x OR !x`
    /// contradictions. Runs to a fixpoint.
    ///
    /// Returns the number of rewrites applied.
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if the netlist is cyclic.
    pub fn sweep(&mut self) -> Result<usize, NetlistError> {
        let mut total = 0;
        loop {
            let n = self.sweep_pass()?;
            total += n;
            if n == 0 {
                break;
            }
        }
        if total > 0 {
            self.prune_dangling();
        }
        Ok(total)
    }

    fn sweep_pass(&mut self) -> Result<usize, NetlistError> {
        let order = self.topo_order()?;
        let mut rewrites = 0;
        for s in order {
            if !self.is_live(s) || self.fanouts(s).is_empty() {
                // Dead or dangling gates are pruned later, not rewritten.
                continue;
            }
            if let Some(replacement) = self.simplified(s)? {
                if replacement != s {
                    self.substitute_stem(s, replacement)?;
                    rewrites += 1;
                }
            }
        }
        Ok(rewrites)
    }

    /// Computes a simpler equivalent signal for `s`, creating helper gates
    /// if needed, or `None` when no simplification applies.
    fn simplified(&mut self, s: SignalId) -> Result<Option<SignalId>, NetlistError> {
        use GateKind::*;
        let kind = self.kind(s);
        let fanins: Vec<SignalId> = self.fanins(s).to_vec();
        let is_const = |nl: &Netlist, f: SignalId| match nl.kind(f) {
            Const0 => Some(false),
            Const1 => Some(true),
            _ => None,
        };
        match kind {
            Input | Const0 | Const1 | Aoi21 | Oai21 | Aoi22 | Oai22 => Ok(None),
            Buf => Ok(Some(fanins[0])),
            Not => {
                let f = fanins[0];
                match self.kind(f) {
                    Not => Ok(Some(self.fanins(f)[0])),
                    Const0 => Ok(Some(self.const1())),
                    Const1 => Ok(Some(self.const0())),
                    _ => Ok(None),
                }
            }
            And | Nand | Or | Nor => {
                let invert = matches!(kind, Nand | Nor);
                let is_and = matches!(kind, And | Nand);
                // Dominant / identity constants.
                let mut keep: Vec<SignalId> = Vec::with_capacity(fanins.len());
                let mut dominated = false;
                for &f in &fanins {
                    match is_const(self, f) {
                        Some(v) if v == is_and => {} // identity: drop
                        Some(_) => {
                            dominated = true;
                            break;
                        }
                        None => {
                            if !keep.contains(&f) {
                                keep.push(f);
                            }
                        }
                    }
                }
                if dominated {
                    let c = if is_and ^ invert {
                        self.const0()
                    } else {
                        self.const1()
                    };
                    return Ok(Some(c));
                }
                // x AND !x = 0 / x OR !x = 1.
                for &f in &keep {
                    if self.kind(f) == Not && keep.contains(&self.fanins(f)[0]) {
                        let c = if is_and ^ invert {
                            self.const0()
                        } else {
                            self.const1()
                        };
                        return Ok(Some(c));
                    }
                }
                match keep.len() {
                    0 => {
                        // All fanins were identity constants.
                        let c = if is_and ^ invert {
                            self.const1()
                        } else {
                            self.const0()
                        };
                        Ok(Some(c))
                    }
                    1 => {
                        if invert {
                            Ok(Some(self.add_gate(Not, &[keep[0]])?))
                        } else {
                            Ok(Some(keep[0]))
                        }
                    }
                    n if n < fanins.len() => Ok(Some(self.add_gate(kind, &keep)?)),
                    _ => Ok(None),
                }
            }
            Xor | Xnor => {
                let mut flip = kind == Xnor;
                // Count occurrences mod 2; constants fold into flip.
                let mut keep: Vec<SignalId> = Vec::new();
                for &f in &fanins {
                    match is_const(self, f) {
                        Some(v) => flip ^= v,
                        None => {
                            if let Some(pos) = keep.iter().position(|&x| x == f) {
                                keep.swap_remove(pos); // pair cancels
                            } else {
                                keep.push(f);
                            }
                        }
                    }
                }
                match keep.len() {
                    0 => {
                        let c = if flip { self.const1() } else { self.const0() };
                        Ok(Some(c))
                    }
                    1 => {
                        if flip {
                            Ok(Some(self.add_gate(Not, &[keep[0]])?))
                        } else {
                            Ok(Some(keep[0]))
                        }
                    }
                    n if n < fanins.len() => {
                        let k = if flip { Xnor } else { Xor };
                        Ok(Some(self.add_gate(k, &keep)?))
                    }
                    _ if flip != (kind == Xnor) => {
                        let k = if flip { Xnor } else { Xor };
                        Ok(Some(self.add_gate(k, &keep)?))
                    }
                    _ => Ok(None),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strash_merges_identical_gates() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::And, &[b, a]).unwrap(); // commutative dup
        let o1 = nl.add_gate(GateKind::Not, &[g1]).unwrap();
        let o2 = nl.add_gate(GateKind::Not, &[g2]).unwrap(); // becomes dup after merge
        nl.add_output("o1", o1);
        nl.add_output("o2", o2);
        let merged = nl.strash().unwrap();
        assert_eq!(merged, 2);
        assert_eq!(nl.stats().gates, 2);
        nl.validate().unwrap();
        assert_eq!(nl.outputs()[0].driver(), nl.outputs()[1].driver());
    }

    #[test]
    fn strash_respects_pin_order_of_noncommutative_gates() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.add_gate(GateKind::Aoi21, &[a, b, c]).unwrap();
        let g2 = nl.add_gate(GateKind::Aoi21, &[c, b, a]).unwrap();
        nl.add_output("o1", g1);
        nl.add_output("o2", g2);
        assert_eq!(nl.strash().unwrap(), 0);
    }

    #[test]
    fn sweep_folds_constants_through_and() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let one = nl.const1();
        let g = nl.add_gate(GateKind::And, &[a, one]).unwrap();
        let h = nl.add_gate(GateKind::Not, &[g]).unwrap();
        nl.add_output("o", h);
        let before = nl.eval_outputs(&[true]).unwrap();
        nl.sweep().unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.eval_outputs(&[true]).unwrap(), before);
        // AND(a, 1) collapsed; only the NOT remains.
        assert_eq!(nl.stats().gates, 1);
    }

    #[test]
    fn sweep_collapses_double_inverter() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let n1 = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let n2 = nl.add_gate(GateKind::Not, &[n1]).unwrap();
        nl.add_output("o", n2);
        nl.sweep().unwrap();
        assert_eq!(nl.stats().gates, 0);
        assert_eq!(nl.outputs()[0].driver(), a);
    }

    #[test]
    fn sweep_handles_dominating_constant() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let zero = nl.const0();
        let g = nl.add_gate(GateKind::And, &[a, zero]).unwrap();
        nl.add_output("o", g);
        nl.sweep().unwrap();
        assert_eq!(nl.kind(nl.outputs()[0].driver()), GateKind::Const0);
    }

    #[test]
    fn sweep_cancels_xor_pairs() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::Xor, &[a, b, a]).unwrap();
        nl.add_output("o", g);
        nl.sweep().unwrap();
        nl.validate().unwrap();
        assert_eq!(nl.outputs()[0].driver(), b);
    }

    #[test]
    fn sweep_detects_contradiction() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let na = nl.add_gate(GateKind::Not, &[a]).unwrap();
        let g = nl.add_gate(GateKind::Or, &[a, na]).unwrap();
        nl.add_output("o", g);
        nl.sweep().unwrap();
        assert_eq!(nl.kind(nl.outputs()[0].driver()), GateKind::Const1);
    }

    #[test]
    fn sweep_nand_single_survivor_becomes_not() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let one = nl.const1();
        let g = nl.add_gate(GateKind::Nand, &[a, one]).unwrap();
        nl.add_output("o", g);
        nl.sweep().unwrap();
        nl.validate().unwrap();
        let drv = nl.outputs()[0].driver();
        assert_eq!(nl.kind(drv), GateKind::Not);
        assert_eq!(nl.fanins(drv), &[a]);
    }

    #[test]
    fn sweep_preserves_function_on_random_mix() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let one = nl.const1();
        let zero = nl.const0();
        let g1 = nl.add_gate(GateKind::Or, &[a, zero, b]).unwrap();
        let g2 = nl.add_gate(GateKind::Xnor, &[g1, one]).unwrap();
        let g3 = nl.add_gate(GateKind::Nand, &[g2, g2, c]).unwrap();
        let g4 = nl.add_gate(GateKind::Buf, &[g3]).unwrap();
        nl.add_output("o", g4);
        let reference: Vec<Vec<bool>> = (0..8)
            .map(|v| {
                nl.eval_outputs(&[v & 1 == 1, v >> 1 & 1 == 1, v >> 2 & 1 == 1])
                    .unwrap()
            })
            .collect();
        nl.sweep().unwrap();
        nl.validate().unwrap();
        for (v, expected) in reference.iter().enumerate() {
            let got = nl
                .eval_outputs(&[v & 1 == 1, v >> 1 & 1 == 1, v >> 2 & 1 == 1])
                .unwrap();
            assert_eq!(&got, expected);
        }
    }
}
