use crate::SignalId;
use std::fmt;

/// Errors produced by netlist construction and editing operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A gate was given a fanin count its kind does not accept.
    ArityMismatch {
        /// The offending kind's mnemonic.
        kind: &'static str,
        /// The fanin count that was supplied.
        got: usize,
    },
    /// A referenced signal does not exist or has been deleted.
    DeadSignal(SignalId),
    /// A pin index was out of range for the cell.
    PinOutOfRange {
        /// The cell being edited.
        cell: SignalId,
        /// The requested pin.
        pin: u32,
    },
    /// The requested edit would create a combinational cycle.
    WouldCycle {
        /// The signal being substituted.
        target: SignalId,
        /// The replacement whose cone reaches back to `target`.
        replacement: SignalId,
    },
    /// A name was not found in the netlist's symbol table.
    UnknownName(String),
    /// A name is already bound to a different signal.
    DuplicateName(String),
    /// The netlist contains a combinational cycle.
    CycleDetected,
    /// An operation targeted a primary input where a gate was required.
    NotAGate(SignalId),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ArityMismatch { kind, got } => {
                write!(f, "gate kind {kind} cannot take {got} fanins")
            }
            NetlistError::DeadSignal(s) => write!(f, "signal {s} does not exist or was deleted"),
            NetlistError::PinOutOfRange { cell, pin } => {
                write!(f, "cell {cell} has no input pin {pin}")
            }
            NetlistError::WouldCycle {
                target,
                replacement,
            } => write!(
                f,
                "substituting {target} by {replacement} would create a combinational cycle"
            ),
            NetlistError::UnknownName(n) => write!(f, "no signal named {n:?}"),
            NetlistError::DuplicateName(n) => write!(f, "signal name {n:?} is already in use"),
            NetlistError::CycleDetected => write!(f, "netlist contains a combinational cycle"),
            NetlistError::NotAGate(s) => write!(f, "signal {s} is not a gate"),
        }
    }
}

impl std::error::Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = NetlistError::DeadSignal(SignalId::from_index(3));
        assert_eq!(e.to_string(), "signal n3 does not exist or was deleted");
        let e = NetlistError::ArityMismatch {
            kind: "NOT",
            got: 2,
        };
        assert!(e.to_string().contains("NOT"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetlistError>();
    }
}
