use crate::{GateKind, SignalId};

/// One cell of the netlist together with its fanin connections.
///
/// A cell's output *is* its signal: the paper's *stem* signal. The fanout
/// side is stored separately in the netlist so that cells stay small and
/// rewiring one branch does not touch the cell itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    pub(crate) kind: GateKind,
    pub(crate) fanins: Vec<SignalId>,
    /// Index of the bound library cell, if this netlist is mapped.
    pub(crate) lib: Option<u32>,
    pub(crate) name: Option<String>,
}

impl Cell {
    /// The logic function of this cell.
    #[must_use]
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// The input signals, in pin order.
    #[must_use]
    pub fn fanins(&self) -> &[SignalId] {
        &self.fanins
    }

    /// Index of the technology-library cell this gate is mapped to, if any.
    ///
    /// The netlist crate treats this as an opaque tag; the `library` crate
    /// interprets it.
    #[must_use]
    pub fn lib(&self) -> Option<u32> {
        self.lib
    }

    /// The user-visible name of this signal, if one was assigned.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

/// One fanout connection of a stem signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fanout {
    /// The stem drives input pin `pin` of cell `cell`.
    Gate {
        /// Consuming cell.
        cell: SignalId,
        /// Zero-based input-pin index within the consuming cell.
        pin: u32,
    },
    /// The stem drives primary output number `index`.
    Po(u32),
}

/// A *branch* signal: one particular gate-input connection.
///
/// The paper distinguishes the root of a multi-fanout signal (the *stem*)
/// from its individual fanout connections (the *branches*). An input
/// substitution `IS2`/`IS3` rewires a single branch; an output substitution
/// `OS2`/`OS3` rewires the stem, i.e. every branch at once.
///
/// # Example
///
/// ```
/// use netlist::{Netlist, GateKind, Branch};
///
/// # fn main() -> Result<(), netlist::NetlistError> {
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_gate(GateKind::And, &[a, b])?;
/// let br = Branch { cell: g, pin: 0 };
/// assert_eq!(nl.branch_source(br)?, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Branch {
    /// The consuming cell.
    pub cell: SignalId,
    /// The input-pin index within `cell`.
    pub pin: u32,
}

impl std::fmt::Display for Branch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.cell, self.pin)
    }
}
