//! Whole-netlist integrity checking.

use crate::{Fanout, Netlist, SignalId};
use std::fmt;

/// An invariant violation discovered by [`Netlist::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ValidateError {
    /// A live cell references a dead fanin.
    DeadFanin {
        /// The cell with the bad reference.
        cell: SignalId,
        /// The dead signal it references.
        fanin: SignalId,
    },
    /// A cell's fanin count violates its kind's arity.
    BadArity(SignalId),
    /// A fanin connection is missing from the source's fanout table, or a
    /// fanout entry points at a pin fed by a different source.
    FanoutMismatch(SignalId),
    /// A primary output references a dead driver.
    DeadOutput(String),
    /// The netlist contains a combinational cycle.
    Cycle {
        /// Names (or ids, for unnamed cells) of signals on or downstream
        /// of a cycle, capped at [`CYCLE_MEMBER_CAP`] entries.
        members: Vec<String>,
    },
    /// The name table maps a name to a dead or differently-named cell.
    NameTable(String),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::DeadFanin { cell, fanin } => {
                write!(f, "cell {cell} references dead fanin {fanin}")
            }
            ValidateError::BadArity(s) => write!(f, "cell {s} violates its kind's arity"),
            ValidateError::FanoutMismatch(s) => {
                write!(f, "fanout table of {s} is inconsistent with fanin lists")
            }
            ValidateError::DeadOutput(n) => write!(f, "primary output {n:?} has a dead driver"),
            ValidateError::Cycle { members } => {
                write!(
                    f,
                    "netlist contains a combinational cycle through [{}]",
                    members.join(", ")
                )
            }
            ValidateError::NameTable(n) => write!(f, "name table entry {n:?} is stale"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Most cycle member names reported in [`ValidateError::Cycle`].
pub const CYCLE_MEMBER_CAP: usize = 16;

impl Netlist {
    /// Verifies every structural invariant of the netlist.
    ///
    /// Checks performed:
    ///
    /// 1. every fanin of a live cell is live,
    /// 2. every cell satisfies its kind's arity,
    /// 3. the fanout tables exactly mirror fanin lists and output bindings,
    /// 4. the netlist is acyclic,
    /// 5. the name table points at live, correctly named cells.
    ///
    /// # Errors
    ///
    /// The first violation found, as a [`ValidateError`].
    pub fn validate(&self) -> Result<(), ValidateError> {
        for s in self.signals() {
            let cell = self.cell(s);
            if !cell.kind().arity().accepts(cell.fanins().len()) {
                return Err(ValidateError::BadArity(s));
            }
            for &f in cell.fanins() {
                if !self.is_live(f) {
                    return Err(ValidateError::DeadFanin { cell: s, fanin: f });
                }
            }
        }
        // Forward check: every fanout entry corresponds to a real use.
        for s in self.signals() {
            for fo in self.fanouts(s) {
                match *fo {
                    Fanout::Gate { cell, pin } => {
                        let ok = self
                            .try_cell(cell)
                            .ok()
                            .and_then(|c| c.fanins().get(pin as usize))
                            .is_some_and(|&src| src == s);
                        if !ok {
                            return Err(ValidateError::FanoutMismatch(s));
                        }
                    }
                    Fanout::Po(index) => {
                        let ok = self
                            .outputs()
                            .get(index as usize)
                            .is_some_and(|po| po.driver() == s);
                        if !ok {
                            return Err(ValidateError::FanoutMismatch(s));
                        }
                    }
                }
            }
        }
        // Backward check: every use appears exactly once in a fanout table.
        for s in self.signals() {
            for (pin, &f) in self.cell(s).fanins().iter().enumerate() {
                let expected = Fanout::Gate {
                    cell: s,
                    pin: pin as u32,
                };
                let n = self.fanouts(f).iter().filter(|&&x| x == expected).count();
                if n != 1 {
                    return Err(ValidateError::FanoutMismatch(f));
                }
            }
        }
        for po in self.outputs() {
            if !self.is_live(po.driver()) {
                return Err(ValidateError::DeadOutput(po.name().to_string()));
            }
        }
        if self.topo_order().is_err() {
            return Err(ValidateError::Cycle {
                members: self.cycle_members(),
            });
        }
        for (name, &s) in &self.by_name {
            let ok = self
                .try_cell(s)
                .ok()
                .is_some_and(|c| c.name() == Some(name.as_str()));
            if !ok {
                return Err(ValidateError::NameTable(name.clone()));
            }
        }
        Ok(())
    }

    /// Names the signals a topological sort could not place: everything
    /// on or downstream of a combinational cycle. Unnamed cells fall back
    /// to their id; the list stops at [`CYCLE_MEMBER_CAP`] entries.
    fn cycle_members(&self) -> Vec<String> {
        let cap = self.capacity();
        let mut pending: Vec<u32> = vec![0; cap];
        let mut ready: Vec<SignalId> = Vec::new();
        for s in self.signals() {
            let n = self.fanins(s).len() as u32;
            pending[s.index()] = n;
            if n == 0 {
                ready.push(s);
            }
        }
        while let Some(s) = ready.pop() {
            for fo in self.fanouts(s) {
                if let Fanout::Gate { cell, .. } = *fo {
                    pending[cell.index()] -= 1;
                    if pending[cell.index()] == 0 {
                        ready.push(cell);
                    }
                }
            }
        }
        self.signals()
            .filter(|s| pending[s.index()] != 0)
            .take(CYCLE_MEMBER_CAP)
            .map(|s| match self.cell(s).name() {
                Some(n) => n.to_string(),
                None => s.to_string(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::{GateKind, Netlist};

    #[test]
    fn valid_netlist_passes() {
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_gate(GateKind::Xor, &[a, b]).unwrap();
        nl.add_output("o", g);
        nl.validate().unwrap();
    }

    #[test]
    fn validate_survives_editing_sequence() {
        use crate::Branch;
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::Or, &[g1, c]).unwrap();
        let g3 = nl.add_gate(GateKind::Not, &[g2]).unwrap();
        nl.add_output("o", g3);
        nl.validate().unwrap();
        nl.rewire_branch(Branch { cell: g2, pin: 0 }, a).unwrap();
        nl.validate().unwrap();
        nl.prune_dangling();
        nl.validate().unwrap();
        nl.substitute_stem(g2, c).unwrap();
        nl.prune_dangling();
        nl.validate().unwrap();
    }

    #[test]
    fn cycle_error_names_its_members() {
        use crate::{Fanout, ValidateError};
        let mut nl = Netlist::new("t");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::Not, &[g1]).unwrap();
        nl.add_output("o", g2);
        // The editing API refuses to create cycles (`WouldCycle`), so
        // forge one through the internals — the situation `validate`
        // exists to diagnose. Keep the fanout tables consistent so the
        // cycle check is what fires: g1 -> g2 -> g1.
        nl.cells[g1.index()].as_mut().unwrap().fanins[0] = g2;
        nl.fanouts[a.index()]
            .retain(|fo| !matches!(fo, Fanout::Gate { cell, pin: 0 } if *cell == g1));
        nl.fanouts[g2.index()].push(Fanout::Gate { cell: g1, pin: 0 });
        match nl.validate() {
            Err(ValidateError::Cycle { members }) => {
                assert!(!members.is_empty(), "cycle must name its members");
                let msg = ValidateError::Cycle { members }.to_string();
                assert!(msg.contains("cycle"), "{msg}");
            }
            other => panic!("expected Cycle, got {other:?}"),
        }
    }
}
