//! Order-independent structural digests.
//!
//! [`Netlist::structural_digest`] summarizes the *shape* of a netlist —
//! gate kinds, pin connections, library bindings, PI/PO interfaces — in
//! a single 64-bit value that is invariant under signal renaming and id
//! permutation. Two isomorphic netlists (same DAG up to relabeling of
//! signals and reordering of insertion) produce the same digest; two
//! structurally different netlists produce different digests with
//! overwhelming probability (this is a hash, not a canonical form).
//!
//! The digest is the cache-key primitive of the serving gateway: a
//! result computed for one submission can answer a duplicate submission
//! whose netlist arrived with different signal names or a different
//! file ordering, because both hash to the same key.
//!
//! # Construction
//!
//! A Weisfeiler–Leman-style refinement in two sweeps:
//!
//! 1. **Forward** (topo order): every signal gets a *down* hash from its
//!    kind, library binding, and its fanins' down hashes — positional
//!    for non-commutative kinds, as a sorted multiset for commutative
//!    ones (matching [`Netlist::strash`]'s equivalence).
//! 2. **Backward** (reverse topo order): every signal gets an *up* hash
//!    from the sorted multiset of its fanout edges, each edge combining
//!    the consumer's up hash, kind, and pin index (pin position is
//!    dropped for commutative consumers), plus a marker per driven
//!    primary output.
//!
//! The final digest hashes the sorted multiset of per-signal
//! `(down, up)` labels together with the interface counts. Signal ids
//! enter only through hashes of *content*, never through their numeric
//! values, and names are never consulted at all.

use crate::{Fanout, GateKind, Netlist, NetlistError};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a over 64-bit words.
#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new(tag: u64) -> Fnv {
        let mut h = Fnv(FNV_OFFSET);
        h.word(tag);
        h
    }

    fn word(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn finish(self) -> u64 {
        // One avalanche round so near-identical inputs decorrelate.
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Domain-separation tags for the digest's hash tree.
const TAG_DOWN: u64 = 0x646f_776e; // "down"
const TAG_UP: u64 = 0x7570; // "up"
const TAG_PO: u64 = 0x706f; // "po"
const TAG_LABEL: u64 = 0x006c_626c; // "lbl"
const TAG_ROOT: u64 = 0x726f_6f74; // "root"

fn kind_tag(kind: GateKind) -> u64 {
    // The Debug name is the stable identity of a kind; hashing it avoids
    // depending on discriminant values, which renumber when variants are
    // added.
    let mut h = Fnv::new(0x6b69_6e64); // "kind"
    for b in format!("{kind:?}").bytes() {
        h.word(u64::from(b));
    }
    h.finish()
}

impl Netlist {
    /// A 64-bit digest of the netlist's structure, invariant under
    /// signal renaming and id/insertion-order permutation (see the
    /// [module docs](self) for the construction and its guarantees).
    ///
    /// # Errors
    ///
    /// [`NetlistError::CycleDetected`] if the netlist is cyclic — the
    /// refinement sweeps need a topological order.
    pub fn structural_digest(&self) -> Result<u64, NetlistError> {
        let order = self.topo_order()?;
        let cap = self.capacity();

        // Forward sweep: down hashes from fanin structure.
        let mut down: Vec<u64> = vec![0; cap];
        for &s in &order {
            let kind = self.kind(s);
            let mut h = Fnv::new(TAG_DOWN);
            h.word(kind_tag(kind));
            h.word(self.cell(s).lib().map_or(u64::MAX, u64::from));
            let mut fanin_hashes: Vec<u64> =
                self.fanins(s).iter().map(|f| down[f.index()]).collect();
            if kind.is_commutative() {
                fanin_hashes.sort_unstable();
            }
            for fh in fanin_hashes {
                h.word(fh);
            }
            down[s.index()] = h.finish();
        }

        // Primary outputs driven per signal (a PO is an anonymous marker
        // here: PO *names* and list order are presentation, not
        // structure).
        let mut po_marks: Vec<u64> = vec![0; cap];
        for po in self.outputs() {
            po_marks[po.driver().index()] += 1;
        }

        // Backward sweep: up hashes from fanout structure.
        let mut up: Vec<u64> = vec![0; cap];
        for &s in order.iter().rev() {
            let mut edge_hashes: Vec<u64> = Vec::with_capacity(self.fanouts(s).len());
            for fo in self.fanouts(s) {
                match *fo {
                    Fanout::Gate { cell, pin } => {
                        let ckind = self.kind(cell);
                        let mut e = Fnv::new(TAG_UP);
                        e.word(up[cell.index()]);
                        e.word(kind_tag(ckind));
                        e.word(if ckind.is_commutative() {
                            0
                        } else {
                            u64::from(pin) + 1
                        });
                        edge_hashes.push(e.finish());
                    }
                    Fanout::Po(_) => {
                        // Counted below via po_marks so the digest does
                        // not depend on PO index assignment.
                    }
                }
            }
            edge_hashes.sort_unstable();
            let mut h = Fnv::new(TAG_UP);
            h.word(kind_tag(self.kind(s)));
            h.word(TAG_PO.wrapping_mul(po_marks[s.index()]));
            for eh in edge_hashes {
                h.word(eh);
            }
            up[s.index()] = h.finish();
        }

        // Combine: sorted multiset of per-signal labels + interface
        // counts. Labels fuse both sweeps, so a signal's hash reflects
        // its whole context (transitive fanin *and* fanout).
        let mut labels: Vec<u64> = order
            .iter()
            .map(|s| {
                let mut h = Fnv::new(TAG_LABEL);
                h.word(down[s.index()]);
                h.word(up[s.index()]);
                h.finish()
            })
            .collect();
        labels.sort_unstable();
        let mut root = Fnv::new(TAG_ROOT);
        root.word(self.inputs().len() as u64);
        root.word(self.outputs().len() as u64);
        root.word(order.len() as u64);
        for l in labels {
            root.word(l);
        }
        // PO drivers as a sorted multiset of their labels, so output
        // structure is pinned even when a PO driver has no gate fanout.
        let mut po_labels: Vec<u64> = self
            .outputs()
            .iter()
            .map(|po| {
                let i = po.driver().index();
                let mut h = Fnv::new(TAG_PO);
                h.word(down[i]);
                h.word(up[i]);
                h.finish()
            })
            .collect();
        po_labels.sort_unstable();
        for l in po_labels {
            root.word(l);
        }
        Ok(root.finish())
    }
}

#[cfg(test)]
mod tests {
    use crate::{GateKind, Netlist};

    fn diamond() -> Netlist {
        let mut nl = Netlist::new("d");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = nl.add_gate(GateKind::Or, &[a, b]).unwrap();
        let g3 = nl.add_gate(GateKind::Xor, &[g1, g2]).unwrap();
        nl.add_output("o", g3);
        nl
    }

    #[test]
    fn digest_ignores_names() {
        let mut renamed = Netlist::new("completely different");
        let a = renamed.add_input("x1");
        let b = renamed.add_input("x2");
        let g1 = renamed.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = renamed.add_gate(GateKind::Or, &[a, b]).unwrap();
        let g3 = renamed.add_gate(GateKind::Xor, &[g1, g2]).unwrap();
        renamed.add_output("out", g3);
        assert_eq!(
            diamond().structural_digest().unwrap(),
            renamed.structural_digest().unwrap()
        );
    }

    #[test]
    fn digest_ignores_insertion_order() {
        // Same DAG, gates inserted in a different topological order and
        // commutative fanins swapped.
        let mut permuted = Netlist::new("d");
        let b = permuted.add_input("b");
        let a = permuted.add_input("a");
        let g2 = permuted.add_gate(GateKind::Or, &[b, a]).unwrap();
        let g1 = permuted.add_gate(GateKind::And, &[b, a]).unwrap();
        let g3 = permuted.add_gate(GateKind::Xor, &[g2, g1]).unwrap();
        permuted.add_output("o", g3);
        assert_eq!(
            diamond().structural_digest().unwrap(),
            permuted.structural_digest().unwrap()
        );
    }

    #[test]
    fn digest_sees_kind_and_pin_order_changes() {
        let base = diamond().structural_digest().unwrap();

        let mut kinded = Netlist::new("d");
        let a = kinded.add_input("a");
        let b = kinded.add_input("b");
        let g1 = kinded.add_gate(GateKind::Nand, &[a, b]).unwrap();
        let g2 = kinded.add_gate(GateKind::Or, &[a, b]).unwrap();
        let g3 = kinded.add_gate(GateKind::Xor, &[g1, g2]).unwrap();
        kinded.add_output("o", g3);
        assert_ne!(base, kinded.structural_digest().unwrap());

        // Non-commutative pin order is structure: an inverted signal on
        // the AND side of an AOI21 vs on its lone OR pin. (A bare PI
        // swap would NOT change the digest — that is just renaming.)
        let mut p1 = Netlist::new("p");
        let a = p1.add_input("a");
        let b = p1.add_input("b");
        let c = p1.add_input("c");
        let n = p1.add_gate(GateKind::Not, &[a]).unwrap();
        let g = p1.add_gate(GateKind::Aoi21, &[n, b, c]).unwrap();
        p1.add_output("o", g);
        let mut p2 = Netlist::new("p");
        let a = p2.add_input("a");
        let b = p2.add_input("b");
        let c = p2.add_input("c");
        let n = p2.add_gate(GateKind::Not, &[a]).unwrap();
        let g = p2.add_gate(GateKind::Aoi21, &[b, c, n]).unwrap();
        p2.add_output("o", g);
        assert_ne!(
            p1.structural_digest().unwrap(),
            p2.structural_digest().unwrap()
        );
    }

    #[test]
    fn digest_distinguishes_sharing_patterns() {
        // (a AND b) OR (b AND c): the middle input is shared...
        let mut shared = Netlist::new("s");
        let a = shared.add_input("a");
        let b = shared.add_input("b");
        let c = shared.add_input("c");
        let g1 = shared.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = shared.add_gate(GateKind::And, &[b, c]).unwrap();
        let o = shared.add_gate(GateKind::Or, &[g1, g2]).unwrap();
        shared.add_output("o", o);
        // ...vs (a AND b) OR (c AND d) with a dangling extra input: the
        // per-input fanout profile differs.
        let mut disjoint = Netlist::new("s");
        let a = disjoint.add_input("a");
        let b = disjoint.add_input("b");
        let c = disjoint.add_input("c");
        let d = disjoint.add_input("d");
        let g1 = disjoint.add_gate(GateKind::And, &[a, b]).unwrap();
        let g2 = disjoint.add_gate(GateKind::And, &[c, d]).unwrap();
        let o = disjoint.add_gate(GateKind::Or, &[g1, g2]).unwrap();
        disjoint.add_output("o", o);
        assert_ne!(
            shared.structural_digest().unwrap(),
            disjoint.structural_digest().unwrap()
        );
    }

    #[test]
    fn digest_sees_library_bindings() {
        let mut nl = diamond();
        let base = nl.structural_digest().unwrap();
        let g = nl.outputs()[0].driver();
        nl.set_lib(g, Some(3)).unwrap();
        assert_ne!(base, nl.structural_digest().unwrap());
    }

    #[test]
    fn digest_counts_duplicate_outputs() {
        let mut single = diamond();
        let d1 = single.structural_digest().unwrap();
        let drv = single.outputs()[0].driver();
        single.add_output("o2", drv);
        assert_ne!(d1, single.structural_digest().unwrap());
    }
}
