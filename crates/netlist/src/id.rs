use std::fmt;

/// Identifier of a signal in a [`Netlist`](crate::Netlist).
///
/// Every signal is the output of exactly one cell (primary inputs are cells
/// of kind [`GateKind::Input`](crate::GateKind::Input)), so a `SignalId`
/// names both the cell and its output signal — the *stem* signal in the
/// paper's terminology.
///
/// # Example
///
/// ```
/// use netlist::{Netlist, SignalId};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// assert_eq!(a, SignalId::from_index(0));
/// assert_eq!(a.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignalId(u32);

impl SignalId {
    /// Builds a `SignalId` from a raw cell index.
    ///
    /// Mostly useful in tests and when deserializing; regular code receives
    /// ids from [`Netlist::add_gate`](crate::Netlist::add_gate) and friends.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[must_use]
    pub fn from_index(index: usize) -> Self {
        SignalId(u32::try_from(index).expect("signal index overflows u32"))
    }

    /// Returns the raw cell index of this signal.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SignalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in [0usize, 1, 17, 65535, 1 << 20] {
            assert_eq!(SignalId::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(SignalId::from_index(42).to_string(), "n42");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(SignalId::from_index(1) < SignalId::from_index(2));
    }
}
