//! Sub-netlist extraction: lifting a region of gates out of a parent
//! netlist as a standalone [`Netlist`] with an explicit boundary pin
//! mapping.
//!
//! A *region* is a set of gates closed enough to optimize independently:
//! signals entering the region become primary inputs of the extracted
//! sub-netlist, and region signals consumed outside it (or driving
//! parent primary outputs) become its primary outputs. The mapping
//! between sub-netlist boundary pins and parent signals is returned
//! alongside, so a caller can seed boundary timing constraints from the
//! parent and stitch an optimized replacement back in.
//!
//! Extraction is only *sound* for convex regions — no path from a region
//! gate may leave the region and re-enter it, otherwise two extracted
//! "inputs" would be correlated through the region's own outputs. The
//! clustering passes that produce regions guarantee convexity; this
//! module checks nothing beyond liveness and acyclicity.

use crate::{Fanout, GateKind, Netlist, NetlistError, SignalId, SignalSet};
use std::collections::{HashMap, VecDeque};

/// A region lifted out of a parent netlist, with its boundary mapping.
///
/// `sub.inputs()[i]` stands for the parent signal `inputs[i]` (frozen at
/// the boundary), and `sub.outputs()[j]` recomputes the parent signal
/// `outputs[j]`. Both mappings are in sub-netlist pin order.
#[derive(Debug, Clone)]
pub struct RegionExtract {
    /// The standalone sub-netlist (library tags copied from the parent).
    pub sub: Netlist,
    /// Parent signal behind each sub-netlist primary input.
    pub inputs: Vec<SignalId>,
    /// Parent signal recomputed by each sub-netlist primary output.
    pub outputs: Vec<SignalId>,
}

impl Netlist {
    /// Extracts the gates in `members` as a standalone sub-netlist.
    ///
    /// Fanins from outside the region become primary inputs (parent
    /// constants are re-created as constants, not inputs); members with
    /// any fanout outside the region — a gate in another region or a
    /// parent primary output — become primary outputs. Gate kinds and
    /// library bindings are copied. The result is deterministic in the
    /// order of `members` (duplicates are ignored).
    ///
    /// # Errors
    ///
    /// [`NetlistError::DeadSignal`] for a dead member,
    /// [`NetlistError::NotAGate`] for a member that is a primary input or
    /// constant, and [`NetlistError::CycleDetected`] if the members do
    /// not order topologically (possible only on a corrupt netlist).
    pub fn extract_region(&self, members: &[SignalId]) -> Result<RegionExtract, NetlistError> {
        let mut member_set = SignalSet::with_capacity(self.capacity());
        let mut uniq: Vec<SignalId> = Vec::with_capacity(members.len());
        for &m in members {
            if !self.is_live(m) {
                return Err(NetlistError::DeadSignal(m));
            }
            if self.kind(m).is_source() {
                return Err(NetlistError::NotAGate(m));
            }
            if member_set.insert(m) {
                uniq.push(m);
            }
        }
        let order = self.region_topo(&uniq, &member_set)?;

        let mut sub = Netlist::new(format!("{}.region", self.name()));
        let mut map: HashMap<SignalId, SignalId> = HashMap::with_capacity(2 * uniq.len());
        let mut inputs: Vec<SignalId> = Vec::new();
        for &m in &order {
            let mut fanins = Vec::with_capacity(self.fanins(m).len());
            for &f in self.fanins(m) {
                let sub_f = match map.get(&f) {
                    Some(&x) => x,
                    None => {
                        let x = match self.kind(f) {
                            GateKind::Const0 => sub.const0(),
                            GateKind::Const1 => sub.const1(),
                            _ => {
                                let pi = sub.add_input(format!("x{}", inputs.len()));
                                inputs.push(f);
                                pi
                            }
                        };
                        map.insert(f, x);
                        x
                    }
                };
                fanins.push(sub_f);
            }
            let g = sub.add_gate(self.kind(m), &fanins)?;
            sub.set_lib(g, self.cell(m).lib())?;
            map.insert(m, g);
        }

        let mut outputs: Vec<SignalId> = Vec::new();
        for &m in &order {
            let leaves = self.fanouts(m).iter().any(|fo| match *fo {
                Fanout::Po(_) => true,
                Fanout::Gate { cell, .. } => !member_set.contains(cell),
            });
            if leaves {
                sub.add_output(format!("y{}", outputs.len()), map[&m]);
                outputs.push(m);
            }
        }
        Ok(RegionExtract {
            sub,
            inputs,
            outputs,
        })
    }

    /// Topologically orders `members` among themselves (Kahn's algorithm
    /// restricted to intra-region edges), deterministically in member
    /// order.
    fn region_topo(
        &self,
        members: &[SignalId],
        member_set: &SignalSet,
    ) -> Result<Vec<SignalId>, NetlistError> {
        let mut indeg: HashMap<SignalId, usize> = HashMap::with_capacity(members.len());
        for &m in members {
            let d = self
                .fanins(m)
                .iter()
                .filter(|f| member_set.contains(**f))
                .count();
            indeg.insert(m, d);
        }
        let mut queue: VecDeque<SignalId> =
            members.iter().copied().filter(|m| indeg[m] == 0).collect();
        let mut order = Vec::with_capacity(members.len());
        while let Some(m) = queue.pop_front() {
            order.push(m);
            for fo in self.fanouts(m) {
                if let Fanout::Gate { cell, .. } = *fo {
                    if let Some(d) = indeg.get_mut(&cell) {
                        *d -= 1;
                        if *d == 0 {
                            queue.push_back(cell);
                        }
                    }
                }
            }
        }
        if order.len() != members.len() {
            return Err(NetlistError::CycleDetected);
        }
        Ok(order)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively checks that the extraction computes, at every
    /// boundary output, the same value the parent computes for the
    /// corresponding parent signal (inputs fed through the boundary
    /// mapping).
    fn check_consistent(nl: &Netlist, ex: &RegionExtract) {
        let n = nl.inputs().len();
        assert!(n <= 10);
        for v in 0u32..(1u32 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| v >> i & 1 == 1).collect();
            let parent = nl.eval(&assignment).unwrap();
            let sub_in: Vec<bool> = ex.inputs.iter().map(|s| parent[s.index()]).collect();
            let got = ex.sub.eval_outputs(&sub_in).unwrap();
            let want: Vec<bool> = ex.outputs.iter().map(|s| parent[s.index()]).collect();
            assert_eq!(got, want);
        }
    }

    /// d = AND(a, b); e = NOT(c); f = OR(d, e); y = f.
    fn fig1() -> (Netlist, [SignalId; 3]) {
        let mut nl = Netlist::new("fig1");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let d = nl.add_gate(GateKind::And, &[a, b]).unwrap();
        let e = nl.add_gate(GateKind::Not, &[c]).unwrap();
        let f = nl.add_gate(GateKind::Or, &[d, e]).unwrap();
        nl.add_output("f", f);
        (nl, [d, e, f])
    }

    #[test]
    fn whole_netlist_extraction_round_trips() {
        let (nl, [d, e, f]) = fig1();
        let ex = nl.extract_region(&[d, e, f]).unwrap();
        ex.sub.validate().unwrap();
        assert_eq!(ex.inputs.len(), 3);
        assert_eq!(ex.outputs, vec![f]);
        check_consistent(&nl, &ex);
    }

    #[test]
    fn partial_region_exposes_boundary_signals() {
        let (nl, [d, e, f]) = fig1();
        // Only the OR: both fanins are boundary inputs.
        let ex = nl.extract_region(&[f]).unwrap();
        assert_eq!(ex.inputs, vec![d, e]);
        assert_eq!(ex.outputs, vec![f]);
        assert_eq!(ex.sub.stats().gates, 1);

        // The two first-level gates: both are boundary outputs (their
        // fanouts leave the region into the OR).
        let ex = nl.extract_region(&[d, e]).unwrap();
        assert_eq!(ex.outputs, vec![d, e]);
        assert_eq!(ex.sub.stats().outputs, 2);
        check_consistent(&nl, &ex);
    }

    #[test]
    fn member_order_only_permutes_the_boundary() {
        let (nl, [d, e, f]) = fig1();
        let fwd = nl.extract_region(&[d, e, f]).unwrap();
        let rev = nl.extract_region(&[f, e, d, f, d]).unwrap();
        assert_eq!(fwd.sub.stats().gates, rev.sub.stats().gates);
        assert_eq!(fwd.outputs, rev.outputs);
        let mut a = fwd.inputs.clone();
        let mut b = rev.inputs.clone();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        check_consistent(&nl, &fwd);
        check_consistent(&nl, &rev);
    }

    #[test]
    fn constants_are_recreated_not_imported() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let one = nl.const1();
        let g = nl.add_gate(GateKind::And, &[a, one]).unwrap();
        nl.add_output("y", g);
        let ex = nl.extract_region(&[g]).unwrap();
        assert_eq!(ex.inputs, vec![a], "the constant must not become a PI");
        assert_eq!(ex.sub.stats().inputs, 1);
    }

    #[test]
    fn library_tags_are_copied() {
        let (mut nl, [d, ..]) = fig1();
        nl.set_lib(d, Some(7)).unwrap();
        let ex = nl.extract_region(&[d]).unwrap();
        let sub_gate = ex.sub.outputs()[0].driver();
        assert_eq!(ex.sub.cell(sub_gate).lib(), Some(7));
    }

    #[test]
    fn rejects_sources_and_dead_members() {
        let (mut nl, [d, _, f]) = fig1();
        let a = nl.find("a").unwrap();
        assert!(matches!(
            nl.extract_region(&[a]),
            Err(NetlistError::NotAGate(_))
        ));
        // Delete the OR, then ask for it.
        nl.substitute_stem(f, d).unwrap();
        nl.prune_dangling();
        assert!(matches!(
            nl.extract_region(&[f]),
            Err(NetlistError::DeadSignal(_))
        ));
    }
}
